// Virtual-time race detector (check::AccessRegistry / Region / Cell).
//
// The synthetic fixtures are the detector's contract: two simulated
// processors touching one location at the same virtual time (at least one
// writing) is exactly one hazard with both sites attributed; the same
// traffic mediated by a sim::Resource — or separated in virtual time — is
// clean. The deadlock death test pins the scheduler's all-blocked
// diagnostic, which the Block()-based startup barrier of the join driver
// relies on to fail loudly.
#include <gtest/gtest.h>

#include <string>

#include "check/access_registry.h"
#include "sim/simulation.h"

namespace psj {
namespace {

TEST(AccessRegistryTest, SameTimeCrossProcessWritesAreOneHazard) {
  check::AccessRegistry registry;
  check::Region region("fixture.shared");
  region.Bind(&registry);

  sim::Scheduler scheduler;
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(1000);
    region.NoteWrite(p, "writer_a");
  });
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(1000);
    region.NoteWrite(p, "writer_b");
  });
  scheduler.Run();

  ASSERT_EQ(registry.hazards().size(), 1u);
  const check::Hazard& hazard = registry.hazards()[0];
  EXPECT_EQ(hazard.location, "fixture.shared");
  EXPECT_STREQ(hazard.first.site, "writer_a");
  EXPECT_STREQ(hazard.second.site, "writer_b");
  EXPECT_EQ(hazard.first.process, 0);
  EXPECT_EQ(hazard.second.process, 1);
  EXPECT_EQ(hazard.first.time, 1000);
  EXPECT_EQ(hazard.second.time, 1000);
  EXPECT_TRUE(hazard.first.is_write);
  EXPECT_TRUE(hazard.second.is_write);
  EXPECT_FALSE(registry.clean());
  EXPECT_NE(hazard.Describe().find("fixture.shared"), std::string::npos);
  EXPECT_NE(registry.Summary().find("writer_b"), std::string::npos);
}

TEST(AccessRegistryTest, ReadWriteConflictIsReportedWriteOrderEitherWay) {
  check::AccessRegistry registry;
  check::Region region("fixture.shared");
  region.Bind(&registry);

  sim::Scheduler scheduler;
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(500);
    region.NoteRead(p, "reader");
  });
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(500);
    region.NoteWrite(p, "writer");
  });
  scheduler.Run();

  ASSERT_EQ(registry.hazards().size(), 1u);
  EXPECT_STREQ(registry.hazards()[0].first.site, "reader");
  EXPECT_STREQ(registry.hazards()[0].second.site, "writer");
}

TEST(AccessRegistryTest, SameTimeReadsDoNotConflict) {
  check::AccessRegistry registry;
  check::Region region("fixture.shared");
  region.Bind(&registry);

  sim::Scheduler scheduler;
  for (int i = 0; i < 4; ++i) {
    scheduler.Spawn([&](sim::Process& p) {
      p.WaitUntil(500);
      region.NoteRead(p, "reader");
    });
  }
  scheduler.Run();

  EXPECT_TRUE(registry.clean());
  EXPECT_EQ(registry.num_accesses(), 4);
}

TEST(AccessRegistryTest, DistinctTimesDoNotConflict) {
  check::AccessRegistry registry;
  check::Region region("fixture.shared");
  region.Bind(&registry);

  sim::Scheduler scheduler;
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(1000);
    region.NoteWrite(p, "writer_a");
  });
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(1001);
    region.NoteWrite(p, "writer_b");
  });
  scheduler.Run();

  EXPECT_TRUE(registry.clean()) << registry.Summary();
}

TEST(AccessRegistryTest, SameProcessSameTimeAccessesDoNotConflict) {
  check::AccessRegistry registry;
  check::Region region("fixture.shared");
  region.Bind(&registry);

  sim::Scheduler scheduler;
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(1000);
    region.NoteWrite(p, "first");
    region.NoteWrite(p, "second");  // No Advance between: same time is fine.
  });
  scheduler.Run();

  EXPECT_TRUE(registry.clean()) << registry.Summary();
}

// The core mediation property: a Resource serializes its users in virtual
// time — after Use() returns, the requester's clock has advanced past the
// service interval, so accesses "under the lock" land at distinct times and
// the very same shared traffic that conflicts without the Resource is
// clean with it.
TEST(AccessRegistryTest, ResourceMediatedAccessesAreClean) {
  check::AccessRegistry registry;
  check::Region region("fixture.shared");
  region.Bind(&registry);

  sim::Scheduler scheduler;
  sim::Resource lock("fixture.lock");
  for (int i = 0; i < 4; ++i) {
    scheduler.Spawn([&](sim::Process& p) {
      p.WaitUntil(1000);  // Everyone contends at the same instant.
      lock.Use(p, /*duration=*/7);
      region.NoteWrite(p, "mediated_writer");
    });
  }
  scheduler.Run();

  EXPECT_TRUE(registry.clean()) << registry.Summary();
  EXPECT_EQ(registry.num_accesses(), 4);
  EXPECT_EQ(lock.num_uses(), 4);
}

// The Resource itself is annotated: simultaneous *arrivals* get their FIFO
// order from the dispatch tie-break, which is precisely the hazard the
// detector exists to surface.
TEST(AccessRegistryTest, SimultaneousResourceArrivalsAreAHazard) {
  check::AccessRegistry registry;
  sim::Scheduler scheduler;
  sim::Resource disk("fixture.disk");
  disk.BindCheck(&registry);
  for (int i = 0; i < 2; ++i) {
    scheduler.Spawn([&](sim::Process& p) {
      p.WaitUntil(1000);
      disk.Use(p, /*duration=*/16);
    });
  }
  scheduler.Run();

  ASSERT_EQ(registry.hazards().size(), 1u);
  EXPECT_EQ(registry.hazards()[0].location, "fixture.disk");
}

// Keyed accesses model one entry of a keyed structure (a page of the
// buffer directory): distinct entries commute, equal entries conflict,
// and an unkeyed access still conflicts with any keyed one.
TEST(AccessRegistryTest, KeyedAccessesConflictOnlyOnTheSameEntry) {
  check::AccessRegistry registry;
  check::Region region("fixture.directory");
  region.Bind(&registry);

  sim::Scheduler scheduler;
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(1000);
    region.NoteWriteKeyed(p, "fill_x", 0x111);
  });
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(1000);
    region.NoteWriteKeyed(p, "fill_y", 0x222);  // Different entry: clean.
  });
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(1000);
    region.NoteReadKeyed(p, "probe_x", 0x111);  // Same entry as fill_x.
  });
  scheduler.Run();

  ASSERT_EQ(registry.hazards().size(), 1u);
  EXPECT_STREQ(registry.hazards()[0].first.site, "fill_x");
  EXPECT_STREQ(registry.hazards()[0].second.site, "probe_x");
  EXPECT_NE(registry.hazards()[0].Describe().find("key="), std::string::npos);
}

TEST(AccessRegistryTest, UnkeyedAccessConflictsWithEveryKeyedEntry) {
  check::AccessRegistry registry;
  check::Region region("fixture.directory");
  region.Bind(&registry);

  sim::Scheduler scheduler;
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(1000);
    region.NoteWriteKeyed(p, "fill_x", 0x111);
  });
  scheduler.Spawn([&](sim::Process& p) {
    p.WaitUntil(1000);
    region.NoteWrite(p, "clear_all");  // Whole-structure write.
  });
  scheduler.Run();

  EXPECT_EQ(registry.hazards().size(), 1u);
}

TEST(AccessRegistryTest, RepeatedConflictsAreDeduplicatedPerSitePair) {
  check::AccessRegistry registry;
  check::Region region("fixture.shared");
  region.Bind(&registry);

  sim::Scheduler scheduler;
  for (int i = 0; i < 2; ++i) {
    scheduler.Spawn([&](sim::Process& p) {
      for (int round = 0; round < 50; ++round) {
        p.WaitUntil((round + 1) * 1000);
        region.NoteWrite(p, "looped_writer");
      }
    });
  }
  scheduler.Run();

  // 50 racy rounds, one report.
  EXPECT_EQ(registry.hazards().size(), 1u);
}

TEST(AccessRegistryTest, UnboundRegionAndCellAreInert) {
  check::Region region("fixture.unbound");
  check::Cell<int> cell("fixture.cell", 41);

  sim::Scheduler scheduler;
  scheduler.Spawn([&](sim::Process& p) {
    region.NoteWrite(p, "writer");
    cell.Write(p, "writer", cell.Read(p, "reader") + 1);
  });
  scheduler.Run();

  EXPECT_FALSE(region.enabled());
  EXPECT_FALSE(cell.enabled());
  EXPECT_EQ(cell.peek(), 42);
}

TEST(AccessRegistryTest, CellConflictNamesTheCell) {
  check::AccessRegistry registry;
  check::Cell<int> cell("fixture.counter");
  cell.Bind(&registry);

  sim::Scheduler scheduler;
  for (int i = 0; i < 2; ++i) {
    scheduler.Spawn([&](sim::Process& p) {
      p.WaitUntil(250);
      ++cell.Mutate(p, "incrementer");
    });
  }
  scheduler.Run();

  EXPECT_EQ(cell.peek(), 2);
  ASSERT_EQ(registry.hazards().size(), 1u);
  EXPECT_EQ(registry.hazards()[0].location, "fixture.counter");
}

TEST(AccessRegistryTest, CleanSummaryMentionsAccessCount) {
  check::AccessRegistry registry;
  EXPECT_TRUE(registry.clean());
  EXPECT_NE(registry.Summary().find("0"), std::string::npos);
}

// A configuration whose processes all block must abort with the live-
// process listing — this is what makes a lost wakeup in the Block()-based
// startup barrier a loud failure instead of a hang.
TEST(SchedulerDeadlockDeathTest, AllBlockedProcessesAbortWithListing) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::Scheduler scheduler(sim::SchedulerBackend::kThread);
        scheduler.Spawn([](sim::Process& p) { p.Block(); });
        scheduler.Spawn([](sim::Process& p) { p.Block(); });
        scheduler.Run();
      },
      "simulation deadlock: live processes exist but none is ready");
}

}  // namespace
}  // namespace psj

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/parallel_join.h"
#include "data/generator.h"
#include "util/rng.h"
#include "data/map_builder.h"
#include "join/second_filter.h"

namespace psj {
namespace {

TEST(SectionMbrsTest, CoverTheWholePolyline) {
  const Polyline line({{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}, {3, 2}});
  for (int sections : {1, 2, 3, 4, 10}) {
    const auto mbrs = ComputeSectionMbrs(line, sections);
    ASSERT_FALSE(mbrs.empty());
    EXPECT_LE(mbrs.size(), static_cast<size_t>(sections));
    Rect covered = Rect::Empty();
    for (const Rect& mbr : mbrs) {
      covered.ExpandToInclude(mbr);
    }
    EXPECT_EQ(covered, line.Mbr()) << "sections=" << sections;
    // Every vertex lies in some section MBR.
    for (const Point& vertex : line.points()) {
      bool inside = false;
      for (const Rect& mbr : mbrs) {
        inside = inside || mbr.ContainsPoint(vertex);
      }
      EXPECT_TRUE(inside);
    }
  }
}

TEST(SectionMbrsTest, TighterThanSingleMbr) {
  // A long diagonal: 4 sections cover a quarter of the single MBR's area.
  Polyline line;
  for (int i = 0; i <= 16; ++i) {
    line.AddPoint({static_cast<double>(i), static_cast<double>(i)});
  }
  const auto one = ComputeSectionMbrs(line, 1);
  const auto four = ComputeSectionMbrs(line, 4);
  double area_four = 0.0;
  for (const Rect& r : four) area_four += r.Area();
  ASSERT_EQ(one.size(), 1u);
  EXPECT_LT(area_four, one[0].Area() / 2.0);
}

TEST(SectionMbrsTest, DegenerateInputs) {
  EXPECT_TRUE(ComputeSectionMbrs(Polyline(), 4).empty());
  const auto point = ComputeSectionMbrs(Polyline({{1, 2}}), 4);
  ASSERT_EQ(point.size(), 1u);
  EXPECT_EQ(point[0], Rect(1, 2, 1, 2));
  const auto segment = ComputeSectionMbrs(Polyline({{0, 0}, {1, 1}}), 4);
  EXPECT_EQ(segment.size(), 1u);
}

// Random multi-segment zigzag polylines, whose section MBRs are genuinely
// tighter than the single MBR.
ObjectStore MakeZigzagStore(uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<MapObject> objects;
  for (int i = 0; i < count; ++i) {
    Polyline line;
    double x = rng.NextDoubleInRange(0.0, 1.0);
    double y = rng.NextDoubleInRange(0.0, 1.0);
    line.AddPoint({x, y});
    double heading = rng.NextDoubleInRange(0.0, 2.0 * M_PI);
    for (int s = 0; s < 8; ++s) {
      heading += rng.NextDoubleInRange(-1.0, 1.0);
      x += 0.02 * std::cos(heading);
      y += 0.02 * std::sin(heading);
      line.AddPoint({x, y});
    }
    objects.push_back(MapObject{static_cast<uint64_t>(i), std::move(line)});
  }
  return ObjectStore(std::move(objects));
}

TEST(SecondFilterTest, NeverEliminatesARealIntersection) {
  // Conservativeness property over random object pairs.
  const ObjectStore store_a = MakeZigzagStore(50, 300);
  const ObjectStore store_b = MakeZigzagStore(51, 300);
  const SecondFilter filter_a(store_a, 4);
  const SecondFilter filter_b(store_b, 4);
  int eliminated = 0;
  for (const MapObject& a : store_a.objects()) {
    for (const MapObject& b : store_b.objects()) {
      if (!a.Mbr().Intersects(b.Mbr())) continue;
      const bool possible = SecondFilter::CanIntersect(
          filter_a.sections(a.id), filter_b.sections(b.id));
      if (!possible) {
        ++eliminated;
        EXPECT_FALSE(a.geometry.Intersects(b.geometry))
            << "second filter eliminated a true answer: " << a.id << ","
            << b.id;
      }
    }
  }
  // The filter must actually eliminate something on this workload.
  EXPECT_GT(eliminated, 0);
}

TEST(SecondFilterTest, CountsTests) {
  const std::vector<Rect> a = {Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)};
  const std::vector<Rect> b = {Rect(10, 10, 11, 11), Rect(0.5, 0.5, 2, 2)};
  size_t tests = 0;
  EXPECT_TRUE(SecondFilter::CanIntersect(a, b, &tests));
  EXPECT_EQ(tests, 2u);  // Stops at the first hit.
  const std::vector<Rect> c = {Rect(20, 20, 21, 21)};
  EXPECT_FALSE(SecondFilter::CanIntersect(a, c, &tests));
  EXPECT_EQ(tests, 2u);  // Exhaustive when disjoint.
}

TEST(SecondFilterJoinTest, AnswersUnchangedAndWorkSaved) {
  // Zigzag objects: the section approximation has real bite here.
  const ObjectStore store_r = MakeZigzagStore(60, 1'500);
  const ObjectStore store_s = MakeZigzagStore(61, 1'500);
  const RStarTree tree_r = BuildTreeFromObjects(1, store_r.objects());
  const RStarTree tree_s = BuildTreeFromObjects(2, store_s.objects());
  ParallelSpatialJoin join(&tree_r, &tree_s, &store_r, &store_s);

  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.num_processors = 4;
  config.num_disks = 4;
  config.second_filter_sections = 8;
  config.collect_pairs = true;
  auto without = join.Run(config);
  ASSERT_TRUE(without.ok());

  config.use_second_filter = true;
  auto with = join.Run(config);
  ASSERT_TRUE(with.ok());

  // Identical candidates and answers.
  const std::set<std::pair<uint64_t, uint64_t>> candidates_a(
      without->candidate_pairs.begin(), without->candidate_pairs.end());
  const std::set<std::pair<uint64_t, uint64_t>> candidates_b(
      with->candidate_pairs.begin(), with->candidate_pairs.end());
  EXPECT_EQ(candidates_a, candidates_b);
  const std::set<std::pair<uint64_t, uint64_t>> answers_a(
      without->answer_pairs.begin(), without->answer_pairs.end());
  const std::set<std::pair<uint64_t, uint64_t>> answers_b(
      with->answer_pairs.begin(), with->answer_pairs.end());
  EXPECT_EQ(answers_a, answers_b);

  // The filter eliminated false hits and saved response time.
  EXPECT_GT(with->stats.total_second_filter_eliminated, 0);
  EXPECT_LT(with->stats.response_time, without->stats.response_time);
}

TEST(SecondFilterJoinTest, RequiresObjectStores) {
  const ObjectStore store(GenerateUniformSegments(52, 100, 0.01));
  const RStarTree tree_a = BuildTreeFromObjects(1, store.objects());
  const RStarTree tree_b = BuildTreeFromObjects(2, store.objects());
  ParallelSpatialJoin join(&tree_a, &tree_b, nullptr, nullptr);
  ParallelJoinConfig config;
  config.compute_answers = false;
  config.use_second_filter = true;
  EXPECT_TRUE(join.Run(config).status().IsInvalidArgument());
  config.second_filter_sections = 0;
  EXPECT_TRUE(join.Run(config).status().IsInvalidArgument());
}

}  // namespace
}  // namespace psj

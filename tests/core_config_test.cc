#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/join_config.h"
#include "core/join_stats.h"

namespace psj {
namespace {

TEST(CostModelTest, PaperDefaults) {
  const CostModel costs;
  EXPECT_EQ(costs.disk.DirectoryPageCost(), 16'000);
  EXPECT_EQ(costs.disk.DataPageWithClusterCost(), 37'500);
  EXPECT_EQ(costs.refine_min, 2'000);
  EXPECT_EQ(costs.refine_max, 18'000);
  // §3.2: own buffer about a factor of 10 faster than a remote buffer.
  EXPECT_NEAR(static_cast<double>(costs.buffer.remote_hit) /
                  static_cast<double>(costs.buffer.local_hit),
              10.0, 0.01);
}

TEST(CostModelTest, RefinementCostTracksOverlap) {
  const CostModel costs;
  // Disjoint MBRs never reach refinement, but the formula floors at min.
  EXPECT_EQ(costs.RefinementCost(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)),
            costs.refine_min);
  // Full containment costs the maximum.
  EXPECT_EQ(costs.RefinementCost(Rect(0, 0, 10, 10), Rect(1, 1, 2, 2)),
            costs.refine_max);
  // Partial overlap lies strictly between.
  const auto mid = costs.RefinementCost(Rect(0, 0, 2, 2), Rect(1, 1, 4, 4));
  EXPECT_GT(mid, costs.refine_min);
  EXPECT_LT(mid, costs.refine_max);
}

TEST(CostModelTest, DescribeMentionsKeyNumbers) {
  const std::string text = CostModel().Describe();
  EXPECT_NE(text.find("37500"), std::string::npos);
  EXPECT_NE(text.find("16000"), std::string::npos);
}

TEST(JoinConfigTest, NamedVariantsMatchPaper) {
  const auto lsr = ParallelJoinConfig::Lsr();
  EXPECT_EQ(lsr.buffer_type, BufferType::kLocal);
  EXPECT_EQ(lsr.assignment, TaskAssignment::kStaticRange);
  const auto gsrr = ParallelJoinConfig::Gsrr();
  EXPECT_EQ(gsrr.buffer_type, BufferType::kGlobal);
  EXPECT_EQ(gsrr.assignment, TaskAssignment::kStaticRoundRobin);
  const auto gd = ParallelJoinConfig::Gd();
  EXPECT_EQ(gd.buffer_type, BufferType::kGlobal);
  EXPECT_EQ(gd.assignment, TaskAssignment::kDynamic);
}

TEST(JoinConfigTest, ValidationCatchesBadValues) {
  ParallelJoinConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_processors = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ParallelJoinConfig();
  config.num_disks = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ParallelJoinConfig();
  config.task_creation_factor = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = ParallelJoinConfig();
  config.costs.refine_max = config.costs.refine_min - 1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(JoinConfigTest, DescribeIsInformative) {
  ParallelJoinConfig config = ParallelJoinConfig::Lsr();
  config.num_processors = 12;
  const std::string text = config.Describe();
  EXPECT_NE(text.find("local"), std::string::npos);
  EXPECT_NE(text.find("static-range"), std::string::npos);
  EXPECT_NE(text.find("n=12"), std::string::npos);
}

TEST(EnumToStringTest, AllValuesNamed) {
  EXPECT_EQ(ToString(BufferType::kLocal), "local");
  EXPECT_EQ(ToString(BufferType::kGlobal), "global");
  EXPECT_EQ(ToString(TaskAssignment::kStaticRange), "static-range");
  EXPECT_EQ(ToString(TaskAssignment::kStaticRoundRobin),
            "static-round-robin");
  EXPECT_EQ(ToString(TaskAssignment::kDynamic), "dynamic");
  EXPECT_EQ(ToString(ReassignmentLevel::kNone), "none");
  EXPECT_EQ(ToString(ReassignmentLevel::kRootLevel), "root");
  EXPECT_EQ(ToString(ReassignmentLevel::kAllLevels), "all");
  EXPECT_EQ(ToString(VictimPolicy::kMostLoaded), "most-loaded");
  EXPECT_EQ(ToString(VictimPolicy::kArbitrary), "arbitrary");
}

TEST(JoinStatsTest, FinalizeAggregatesPerProcessor) {
  JoinStats stats;
  stats.per_processor.resize(3);
  stats.per_processor[0].last_work_time = 100;
  stats.per_processor[0].busy_time = 90;
  stats.per_processor[0].candidates = 5;
  stats.per_processor[1].last_work_time = 300;
  stats.per_processor[1].busy_time = 250;
  stats.per_processor[1].candidates = 7;
  stats.per_processor[1].buffer.remote_hits = 4;
  stats.per_processor[2].last_work_time = 200;
  stats.per_processor[2].busy_time = 180;
  stats.per_processor[2].path_buffer_hits = 3;
  stats.Finalize(/*disk_accesses=*/42, /*disk_wait=*/17);

  EXPECT_EQ(stats.response_time, 300);
  EXPECT_EQ(stats.first_finish, 100);
  EXPECT_EQ(stats.avg_finish, 200);
  EXPECT_EQ(stats.total_task_time, 520);
  EXPECT_EQ(stats.total_candidates, 12);
  EXPECT_EQ(stats.total_remote_hits, 4);
  EXPECT_EQ(stats.total_path_buffer_hits, 3);
  EXPECT_EQ(stats.total_disk_accesses, 42);
  EXPECT_EQ(stats.total_disk_wait, 17);
}

TEST(JoinStatsTest, AvgRefinementTime) {
  JoinStats stats;
  stats.per_processor.resize(2);
  stats.per_processor[0].candidates = 6;
  stats.per_processor[0].refinement_time = 50'000;
  stats.per_processor[1].candidates = 4;
  stats.per_processor[1].second_filter_eliminated = 2;
  stats.per_processor[1].refinement_time = 30'000;
  stats.Finalize(0, 0);
  // 8 tests performed (10 candidates - 2 eliminated), 80 ms total.
  EXPECT_EQ(stats.AvgRefinementTime(), 10'000);

  JoinStats empty;
  empty.per_processor.resize(1);
  empty.Finalize(0, 0);
  EXPECT_EQ(empty.AvgRefinementTime(), 0);
}

TEST(JoinStatsTest, SummaryMentionsKeyFigures) {
  JoinStats stats;
  stats.per_processor.resize(1);
  stats.per_processor[0].last_work_time = 62'800'000;
  stats.per_processor[0].candidates = 1'234;
  stats.Finalize(0, 0);
  const std::string text = stats.Summary();
  EXPECT_NE(text.find("62.8"), std::string::npos);
  EXPECT_NE(text.find("1,234"), std::string::npos);
}

}  // namespace
}  // namespace psj

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "geo/node_scan.h"
#include "geo/rect_batch.h"
#include "join/node_match.h"
#include "rtree/node.h"
#include "rtree/node_soa.h"
#include "rtree/rstar_tree.h"
#include "util/rng.h"

namespace psj {
namespace {

using Pairs = std::vector<std::pair<uint32_t, uint32_t>>;

// Random node-sized rect sets with nasty shapes: grid-snapped coordinates
// (shared edges/corners, duplicate xl keys) and a fraction of zero-extent
// degenerates, as in the rect_batch fuzz suite.
std::vector<Rect> FuzzRects(Rng& rng, size_t count, double max_extent) {
  std::vector<Rect> rects;
  rects.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto snap = [&](double v) {
      return rng.NextDoubleInRange(0.0, 1.0) < 0.5
                 ? std::round(v * 20.0) / 20.0
                 : v;
    };
    const double x = snap(rng.NextDoubleInRange(0.0, 1.0));
    const double y = snap(rng.NextDoubleInRange(0.0, 1.0));
    double w = snap(rng.NextDoubleInRange(0.0, max_extent));
    double h = snap(rng.NextDoubleInRange(0.0, max_extent));
    const double degenerate = rng.NextDoubleInRange(0.0, 1.0);
    if (degenerate < 0.15) w = 0.0;
    if (degenerate > 0.85) h = 0.0;
    rects.emplace_back(x, y, x + w, y + h);
  }
  return rects;
}

RTreeNode MakeNode(const std::vector<Rect>& rects, int16_t level) {
  RTreeNode node;
  node.level = level;
  for (size_t i = 0; i < rects.size(); ++i) {
    node.entries.push_back(RTreeEntry{rects[i], 1000 + i});
  }
  return node;
}

// Builds a one-node cache image the way NodeSoACache would, via a batch.
NodeSoAView ViewOf(const RectBatch& batch, const std::vector<uint64_t>& ids,
                   const RTreeNode& node) {
  return NodeSoAView{batch.view(), ids.data(), node.ComputeMbr()};
}

std::vector<uint32_t> ScalarReference(const std::vector<Rect>& rects,
                                      const Rect& query) {
  std::vector<uint32_t> hits;
  for (size_t i = 0; i < rects.size(); ++i) {
    if (rects[i].Intersects(query)) hits.push_back(static_cast<uint32_t>(i));
  }
  return hits;
}

TEST(NodeScanTest, VariantsMatchScalarReferenceOnFuzzedNodes) {
  Rng rng(20240807);
  // Node fan-outs of interest: empty, single entry, tiny, data-node
  // capacity, directory capacity, and a past-capacity stress size.
  const size_t kSizes[] = {0, 1, 2, 7, 26, 102, 333};
  for (const size_t n : kSizes) {
    for (int round = 0; round < 40; ++round) {
      const auto rects = FuzzRects(rng, n, round % 2 == 0 ? 0.2 : 0.8);
      RectBatch batch;
      batch.Assign(rects);
      const RectSoAView view = batch.view();
      // Queries: fuzzed rects (including degenerate and exactly-touching
      // ones, since coordinates share the same snapped grid) plus one
      // guaranteed-touching query when the node is non-empty.
      std::vector<Rect> queries = FuzzRects(rng, 8, 0.5);
      if (!rects.empty()) {
        const Rect& r0 = rects[0];
        queries.emplace_back(r0.xu, r0.yu, r0.xu + 0.1, r0.yu + 0.1);
      }
      for (const Rect& query : queries) {
        const std::vector<uint32_t> expected = ScalarReference(rects, query);
        std::vector<uint32_t> got;
        ScanIntersecting(view, query, &got);
        EXPECT_EQ(got, expected);
        ScanIntersectingScalar(view, query, &got);
        EXPECT_EQ(got, expected);
        if (NodeScanHasSse2()) {
          ScanIntersectingSse2(view, query, &got);
          EXPECT_EQ(got, expected);
        }
        if (NodeScanHasAvx2()) {
          ScanIntersectingAvx2(view, query, &got);
          EXPECT_EQ(got, expected);
        }
      }
    }
  }
}

TEST(NodeScanTest, IsaNameIsConsistentWithCapabilities) {
  const std::string isa = NodeScanIsa();
  if (NodeScanHasAvx2()) {
    EXPECT_EQ(isa, "avx2");
  } else if (NodeScanHasSse2()) {
    EXPECT_EQ(isa, "sse2");
  } else {
    EXPECT_EQ(isa, "scalar");
  }
}

// MatchNodeEntriesSoA must be bit-identical to MatchNodeEntries — same
// pairs, same order, same counts — across sweep/nested-loop and with the
// restriction on and off.
TEST(NodeSoAMatchTest, MatchesAosPathOnFuzzedNodes) {
  Rng rng(77);
  const size_t kSizes[] = {0, 1, 26, 102};
  for (const size_t nr : kSizes) {
    for (const size_t ns : kSizes) {
      for (int round = 0; round < 12; ++round) {
        const auto rects_r = FuzzRects(rng, nr, 0.3);
        const auto rects_s = FuzzRects(rng, ns, 0.3);
        const RTreeNode node_r = MakeNode(rects_r, 0);
        const RTreeNode node_s = MakeNode(rects_s, 0);
        RectBatch batch_r;
        RectBatch batch_s;
        batch_r.Assign(rects_r);
        batch_s.Assign(rects_s);
        std::vector<uint64_t> ids_r(rects_r.size() + 1, 0);
        std::vector<uint64_t> ids_s(rects_s.size() + 1, 0);
        const NodeSoAView view_r = ViewOf(batch_r, ids_r, node_r);
        const NodeSoAView view_s = ViewOf(batch_s, ids_s, node_s);
        for (const bool restrict_space : {true, false}) {
          for (const bool sweep : {true, false}) {
            NodeMatchOptions options;
            options.use_search_space_restriction = restrict_space;
            options.use_plane_sweep = sweep;
            NodeMatchCounts counts_aos;
            NodeMatchCounts counts_soa;
            const Pairs expected =
                MatchNodeEntries(node_r, node_s, options, &counts_aos);
            const Pairs got =
                MatchNodeEntriesSoA(view_r, view_s, options, &counts_soa);
            EXPECT_EQ(got, expected);
            EXPECT_EQ(counts_soa.entries_considered_r,
                      counts_aos.entries_considered_r);
            EXPECT_EQ(counts_soa.entries_considered_s,
                      counts_aos.entries_considered_s);
            EXPECT_EQ(counts_soa.pairs_tested, counts_aos.pairs_tested);
          }
        }
      }
    }
  }
}

// The tree-level cache: views must reproduce each node's entries, MBR
// (bitwise) and padding contract, and MatchNodePages must agree with the
// AoS path on a sealed tree.
TEST(NodeSoACacheTest, SealedTreeViewsMatchNodes) {
  Rng rng(99);
  RStarTree tree(1);
  const auto rects = FuzzRects(rng, 400, 0.05);
  for (size_t i = 0; i < rects.size(); ++i) {
    tree.Insert(rects[i], i);
  }
  EXPECT_EQ(tree.soa(), nullptr);  // Not sealed yet.
  tree.Seal();
  const NodeSoACache* cache = tree.soa();
  ASSERT_NE(cache, nullptr);
  ASSERT_EQ(cache->num_pages(), tree.num_pages());
  for (uint32_t p = 1; p < tree.num_pages(); ++p) {
    if (tree.IsFreePage(p)) continue;
    const RTreeNode& node = tree.node(p);
    const NodeSoAView v = cache->view(p);
    ASSERT_EQ(v.size(), node.entries.size());
    EXPECT_GE(v.rects.padded, v.size() + RectBatch::kBlock);
    EXPECT_EQ(v.mbr, node.ComputeMbr());
    for (size_t i = 0; i < v.size(); ++i) {
      EXPECT_EQ(v.rects.rect(i), node.entries[i].rect);
      EXPECT_EQ(v.ids[i], node.entries[i].id);
    }
    // Sentinel tail: fails every intersection predicate.
    for (size_t i = v.size(); i < v.rects.padded; ++i) {
      EXPECT_FALSE(v.rects.rect(i).IsValid());
    }
  }
  // A mutation (after Thaw(), per the phase contract) invalidates the
  // cache; re-sealing restores it.
  tree.Thaw();
  tree.Insert(Rect(0.5, 0.5, 0.6, 0.6), 7777);
  EXPECT_EQ(tree.soa(), nullptr);
  tree.Seal();
  EXPECT_NE(tree.soa(), nullptr);
}

TEST(NodeSoACacheTest, MatchNodePagesAgreesWithAosOnSealedTrees) {
  Rng rng(123);
  const auto build = [&](uint32_t id) {
    RStarTree tree(id);
    const auto rects = FuzzRects(rng, 300, 0.08);
    for (size_t i = 0; i < rects.size(); ++i) {
      tree.Insert(rects[i], i);
    }
    tree.Seal();
    return tree;
  };
  const RStarTree tree_r = build(1);
  const RStarTree tree_s = build(2);
  ASSERT_NE(tree_r.soa(), nullptr);
  ASSERT_NE(tree_s.soa(), nullptr);
  NodeMatchCounts counts_pages;
  NodeMatchCounts counts_nodes;
  const Pairs via_pages =
      MatchNodePages(tree_r, tree_r.root_page(), tree_s, tree_s.root_page(),
                     NodeMatchOptions(), &counts_pages);
  const Pairs via_nodes =
      MatchNodeEntries(tree_r.node(tree_r.root_page()),
                       tree_s.node(tree_s.root_page()), NodeMatchOptions(),
                       &counts_nodes);
  EXPECT_EQ(via_pages, via_nodes);
  EXPECT_EQ(counts_pages.pairs_tested, counts_nodes.pairs_tested);
  EXPECT_EQ(counts_pages.entries_considered_r,
            counts_nodes.entries_considered_r);
  EXPECT_EQ(counts_pages.entries_considered_s,
            counts_nodes.entries_considered_s);
}

// Arena storage: sealing with the arena on must not change any query, and
// copy-on-write must kick in on mutation.
TEST(EntryArenaTest, SealedArenaTreeAnswersQueriesIdentically) {
  Rng rng(5);
  RTreeOptions arena_on;
  RTreeOptions arena_off;
  arena_off.arena_entry_storage = false;
  RStarTree tree_a(1, arena_on);
  RStarTree tree_b(1, arena_off);
  const auto rects = FuzzRects(rng, 500, 0.05);
  for (size_t i = 0; i < rects.size(); ++i) {
    tree_a.Insert(rects[i], i);
    tree_b.Insert(rects[i], i);
  }
  tree_a.Seal();
  tree_b.Seal();
  EXPECT_TRUE(tree_a.node(tree_a.root_page()).entries.borrowed());
  EXPECT_FALSE(tree_b.node(tree_b.root_page()).entries.borrowed());
  for (int round = 0; round < 20; ++round) {
    const auto window = FuzzRects(rng, 1, 0.4)[0];
    EXPECT_EQ(tree_a.WindowQuery(window), tree_b.WindowQuery(window));
  }
  // Mutating a sealed arena tree — after the tree-level Thaw() required by
  // the phase contract — thaws the touched nodes (copy-on-write) and keeps
  // the structure consistent.
  tree_a.Thaw();
  tree_b.Thaw();
  for (size_t i = 0; i < 50; ++i) {
    tree_a.Insert(rects[i], 10'000 + i);
    tree_b.Insert(rects[i], 10'000 + i);
  }
  for (size_t i = 100; i < 120; ++i) {
    EXPECT_EQ(tree_a.Delete(rects[i], i), tree_b.Delete(rects[i], i));
  }
  for (int round = 0; round < 20; ++round) {
    const auto window = FuzzRects(rng, 1, 0.4)[0];
    auto got_a = tree_a.WindowQuery(window);
    auto got_b = tree_b.WindowQuery(window);
    std::sort(got_a.begin(), got_a.end());
    std::sort(got_b.begin(), got_b.end());
    EXPECT_EQ(got_a, got_b);
  }
}

}  // namespace
}  // namespace psj

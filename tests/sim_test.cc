#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/fiber_context.h"
#include "sim/simulation.h"

namespace psj::sim {
namespace {

TEST(SchedulerTest, SingleProcessRunsToCompletion) {
  Scheduler sched;
  SimTime end = -1;
  sched.Spawn([&](Process& p) {
    p.Advance(100);
    p.Sync();
    p.Advance(50);
    end = p.now();
  });
  sched.Run();
  EXPECT_EQ(end, 150);
  EXPECT_EQ(sched.end_time(), 150);
}

TEST(SchedulerTest, ProcessesInterleaveInVirtualTimeOrder) {
  // Two processes append events; the trace must follow virtual time.
  Scheduler sched;
  std::vector<std::string> trace;
  sched.Spawn([&](Process& p) {
    trace.push_back("a@" + std::to_string(p.now()));
    p.WaitUntil(100);
    trace.push_back("a@" + std::to_string(p.now()));
    p.WaitUntil(300);
    trace.push_back("a@" + std::to_string(p.now()));
  });
  sched.Spawn([&](Process& p) {
    trace.push_back("b@" + std::to_string(p.now()));
    p.WaitUntil(200);
    trace.push_back("b@" + std::to_string(p.now()));
  });
  sched.Run();
  EXPECT_EQ(trace, (std::vector<std::string>{"a@0", "b@0", "a@100", "b@200",
                                             "a@300"}));
  EXPECT_EQ(sched.end_time(), 300);
}

TEST(SchedulerTest, TieBrokenByProcessId) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.Spawn([&, i](Process& p) {
      p.WaitUntil(10);
      order.push_back(i);
    });
  }
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerTest, AdvanceIsLazyUntilSync) {
  // A process that advances far ahead without syncing must not block an
  // earlier process from observing shared state first at its sync points.
  Scheduler sched;
  std::vector<std::string> trace;
  sched.Spawn([&](Process& p) {
    p.Advance(1'000'000);  // Runs ahead locally.
    p.Sync();              // Now re-enters global order at t=1,000,000.
    trace.push_back("ahead@" + std::to_string(p.now()));
  });
  sched.Spawn([&](Process& p) {
    p.WaitUntil(500);
    trace.push_back("b@" + std::to_string(p.now()));
  });
  sched.Run();
  EXPECT_EQ(trace, (std::vector<std::string>{"b@500", "ahead@1000000"}));
}

TEST(SchedulerTest, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Scheduler sched;
    std::vector<std::pair<int, SimTime>> trace;
    Resource disk("disk");
    for (int i = 0; i < 4; ++i) {
      sched.Spawn([&, i](Process& p) {
        for (int k = 0; k < 3; ++k) {
          p.Advance((i + 1) * 7 + k);
          disk.Use(p, 100);
          trace.emplace_back(i, p.now());
        }
      });
    }
    sched.Run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ResourceTest, FifoQueueingInVirtualTime) {
  Scheduler sched;
  Resource disk("disk");
  std::vector<SimTime> completions(3);
  // All three request at t=0; they must serialize 100 apart in id order.
  for (int i = 0; i < 3; ++i) {
    sched.Spawn([&, i](Process& p) {
      disk.Use(p, 100);
      completions[static_cast<size_t>(i)] = p.now();
    });
  }
  sched.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(disk.num_uses(), 3);
  EXPECT_EQ(disk.busy_time(), 300);
  EXPECT_EQ(disk.queue_wait_time(), 0 + 100 + 200);
}

TEST(ResourceTest, LaterArrivalDoesNotQueueOnIdleServer) {
  Scheduler sched;
  Resource disk("disk");
  SimTime completion = 0;
  sched.Spawn([&](Process& p) {
    disk.Use(p, 50);  // Busy until 50.
  });
  sched.Spawn([&](Process& p) {
    p.WaitUntil(500);
    disk.Use(p, 50);
    completion = p.now();
  });
  sched.Run();
  EXPECT_EQ(completion, 550);
  EXPECT_EQ(disk.queue_wait_time(), 0);
}

TEST(ResourceTest, ArrivalOrderRespectsVirtualTimeNotSpawnOrder) {
  Scheduler sched;
  Resource disk("disk");
  SimTime first_completion = 0;
  SimTime second_completion = 0;
  // Process 0 arrives later in virtual time than process 1.
  sched.Spawn([&](Process& p) {
    p.WaitUntil(200);
    disk.Use(p, 100);
    first_completion = p.now();
  });
  sched.Spawn([&](Process& p) {
    p.WaitUntil(10);
    disk.Use(p, 100);
    second_completion = p.now();
  });
  sched.Run();
  EXPECT_EQ(second_completion, 110);  // Earlier arrival served first.
  EXPECT_EQ(first_completion, 300);
}

TEST(MailboxTest, SendDeliversAfterDelay) {
  Scheduler sched;
  Mailbox<int> box;
  SimTime receive_time = 0;
  int received = 0;
  Process* receiver = sched.Spawn([&](Process& p) {
    received = box.BlockingReceive(p);
    receive_time = p.now();
  });
  box.BindOwner(receiver);
  sched.Spawn([&](Process& p) {
    p.WaitUntil(100);
    box.Send(p, 42, /*delay=*/25);
  });
  sched.Run();
  EXPECT_EQ(received, 42);
  EXPECT_EQ(receive_time, 125);
}

TEST(MailboxTest, TryReceiveOnlySeesDeliveredMessages) {
  Scheduler sched;
  Mailbox<int> box;
  std::vector<std::pair<SimTime, bool>> probes;
  Process* receiver = sched.Spawn([&](Process& p) {
    p.WaitUntil(50);
    probes.emplace_back(p.now(), box.TryReceive(p).has_value());
    p.WaitUntil(200);
    probes.emplace_back(p.now(), box.TryReceive(p).has_value());
  });
  box.BindOwner(receiver);
  sched.Spawn([&](Process& p) {
    p.WaitUntil(60);
    box.Send(p, 1, /*delay=*/40);  // Deliverable at 100.
  });
  sched.Run();
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_FALSE(probes[0].second);  // t=50: nothing sent yet.
  EXPECT_TRUE(probes[1].second);   // t=200: delivered.
}

TEST(MailboxTest, MessagesQueueInOrder) {
  Scheduler sched;
  Mailbox<int> box;
  std::vector<int> received;
  Process* receiver = sched.Spawn([&](Process& p) {
    for (int i = 0; i < 3; ++i) {
      received.push_back(box.BlockingReceive(p));
    }
  });
  box.BindOwner(receiver);
  sched.Spawn([&](Process& p) {
    for (int v = 1; v <= 3; ++v) {
      p.WaitUntil(p.now() + 10);
      box.Send(p, v, 5);
    }
  });
  sched.Run();
  EXPECT_EQ(received, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerStressTest, ManyProcessesManyResourcesStayConsistent) {
  // 24 processes contend for 4 resources with pseudo-random think times;
  // verify global accounting invariants afterwards.
  Scheduler sched;
  std::vector<Resource> disks;
  disks.reserve(4);
  for (int d = 0; d < 4; ++d) {
    disks.emplace_back("disk");
  }
  constexpr int kProcesses = 24;
  constexpr int kOpsPerProcess = 50;
  std::vector<SimTime> finish(kProcesses, 0);
  for (int i = 0; i < kProcesses; ++i) {
    sched.Spawn([&, i](Process& p) {
      uint64_t state = static_cast<uint64_t>(i) * 2654435761u + 1;
      for (int op = 0; op < kOpsPerProcess; ++op) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        p.Advance(static_cast<SimTime>(state % 500));
        disks[state % 4].Use(p, 100);
      }
      finish[static_cast<size_t>(i)] = p.now();
    });
  }
  sched.Run();
  int64_t uses = 0;
  SimTime busy = 0;
  for (const Resource& disk : disks) {
    uses += disk.num_uses();
    busy += disk.busy_time();
    EXPECT_EQ(disk.busy_time(), disk.num_uses() * 100);
  }
  EXPECT_EQ(uses, kProcesses * kOpsPerProcess);
  EXPECT_EQ(busy, uses * 100);
  SimTime max_finish = 0;
  for (SimTime t : finish) {
    EXPECT_GE(t, kOpsPerProcess * 100);  // At least its own service time.
    max_finish = std::max(max_finish, t);
  }
  EXPECT_EQ(sched.end_time(), max_finish);
  // A single resource cannot serve more than its busy time allows:
  // makespan >= total busy time / number of disks.
  EXPECT_GE(max_finish, busy / 4);
}

TEST(SchedulerStressTest, LookaheadNeverReordersResourceService) {
  // One process runs far ahead locally before each request; another stays
  // exact. Service order must still follow virtual request times.
  Scheduler sched;
  Resource disk("disk");
  std::vector<std::pair<int, SimTime>> service_start_order;
  sched.Spawn([&](Process& p) {  // Requests at 1000, 2000, 3000.
    for (int k = 1; k <= 3; ++k) {
      p.Advance(1000 - 10);  // Lookahead without syncing.
      p.Advance(10);
      const SimTime at = p.now();
      disk.Use(p, 1);
      service_start_order.emplace_back(0, at);
      p.WaitUntil(static_cast<SimTime>(k) * 1000);
    }
  });
  sched.Spawn([&](Process& p) {  // Requests at 500, 1500, 2500.
    for (int k = 0; k < 3; ++k) {
      p.WaitUntil(500 + k * 1000);
      const SimTime at = p.now();
      disk.Use(p, 1);
      service_start_order.emplace_back(1, at);
    }
  });
  sched.Run();
  ASSERT_EQ(service_start_order.size(), 6u);
  for (size_t i = 1; i < service_start_order.size(); ++i) {
    EXPECT_LE(service_start_order[i - 1].second,
              service_start_order[i].second)
        << "resource served out of virtual-time order at position " << i;
  }
}

TEST(MailboxTest, MixedTryAndBlockingReceive) {
  Scheduler sched;
  Mailbox<int> box;
  std::vector<int> received;
  Process* receiver = sched.Spawn([&](Process& p) {
    // Poll first (nothing there), then block for two messages.
    EXPECT_FALSE(box.TryReceive(p).has_value());
    received.push_back(box.BlockingReceive(p));
    p.WaitUntil(p.now() + 1'000);
    // By now the second message is deliverable: TryReceive sees it.
    const auto second = box.TryReceive(p);
    ASSERT_TRUE(second.has_value());
    received.push_back(*second);
  });
  box.BindOwner(receiver);
  sched.Spawn([&](Process& p) {
    p.WaitUntil(100);
    box.Send(p, 1, 10);
    box.Send(p, 2, 20);
  });
  sched.Run();
  EXPECT_EQ(received, (std::vector<int>{1, 2}));
}

TEST(SchedulerDeathTest, DeadlockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Scheduler sched;
        sched.Spawn([](Process& p) { p.Block(); });
        sched.Run();
      },
      "deadlock");
}

TEST(SchedulerDeathTest, DeadlockDiagnosticListsLiveProcesses) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The abort message must identify each stuck process with its id, state
  // and local clock; finished processes must not appear.
  EXPECT_DEATH(
      {
        Scheduler sched;
        sched.Spawn([](Process& p) {
          p.WaitUntil(25);
          p.Block();  // Nobody will wake this process.
        });
        sched.Spawn([](Process& p) { p.WaitUntil(10); });  // Finishes fine.
        sched.Run();
      },
      "process 0: state=blocked now=25 resume_time=25");
}

// ---------------------------------------------------------------------------
// Backend coverage: the same virtual-time behavior must hold on the thread
// backend and (when the build provides it) the fiber backend.

std::vector<SchedulerBackend> AvailableBackends() {
  std::vector<SchedulerBackend> backends{SchedulerBackend::kThread};
  if (FiberContext::Supported()) {
    backends.push_back(SchedulerBackend::kFiber);
  }
  return backends;
}

class SchedulerBackendTest
    : public ::testing::TestWithParam<SchedulerBackend> {};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SchedulerBackendTest,
    ::testing::ValuesIn(AvailableBackends()),
    [](const ::testing::TestParamInfo<SchedulerBackend>& info) {
      return std::string(ToString(info.param));
    });

TEST_P(SchedulerBackendTest, InterleavesInVirtualTimeOrder) {
  Scheduler sched(GetParam());
  std::vector<std::string> trace;
  sched.Spawn([&](Process& p) {
    trace.push_back("a@" + std::to_string(p.now()));
    p.WaitUntil(100);
    trace.push_back("a@" + std::to_string(p.now()));
    p.WaitUntil(300);
    trace.push_back("a@" + std::to_string(p.now()));
  });
  sched.Spawn([&](Process& p) {
    trace.push_back("b@" + std::to_string(p.now()));
    p.WaitUntil(200);
    trace.push_back("b@" + std::to_string(p.now()));
  });
  sched.Run();
  EXPECT_EQ(trace, (std::vector<std::string>{"a@0", "b@0", "a@100", "b@200",
                                             "a@300"}));
  EXPECT_EQ(sched.end_time(), 300);
}

TEST_P(SchedulerBackendTest, ResourceFifoInVirtualTime) {
  Scheduler sched(GetParam());
  Resource disk("disk");
  std::vector<SimTime> completions(3);
  for (int i = 0; i < 3; ++i) {
    sched.Spawn([&, i](Process& p) {
      disk.Use(p, 100);
      completions[static_cast<size_t>(i)] = p.now();
    });
  }
  sched.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(disk.queue_wait_time(), 0 + 100 + 200);
}

TEST_P(SchedulerBackendTest, SyncFastPathSkipsHandoff) {
  // A lone process that repeatedly syncs already holds the minimal clock:
  // every yield takes the fast path and the scheduler dispatches only once.
  Scheduler sched(GetParam());
  sched.Spawn([&](Process& p) {
    for (int k = 0; k < 100; ++k) {
      p.Advance(5);
      p.Sync();
    }
  });
  sched.Run();
  EXPECT_EQ(sched.num_dispatches(), 1);
  EXPECT_GE(sched.num_fast_path_yields(), 100);
  EXPECT_EQ(sched.end_time(), 500);
}

TEST_P(SchedulerBackendTest, FinishedProcessesAreNeverRedispatched) {
  // Three processes interleave through four real handoffs each and then
  // finish. Every dispatch is accounted for: one initial dispatch per
  // process plus one per non-fast-path yield. Any re-examination of a
  // finished process would both inflate this count and re-enter a body.
  Scheduler sched(GetParam());
  constexpr int kProcesses = 3;
  constexpr int kYields = 4;
  std::vector<int> body_entries(kProcesses, 0);
  for (int i = 0; i < kProcesses; ++i) {
    sched.Spawn([&, i](Process& p) {
      ++body_entries[static_cast<size_t>(i)];
      for (int k = 1; k <= kYields; ++k) {
        // Interleaved targets: some other process always resumes earlier,
        // so every yield is a real handoff, never the fast path.
        p.WaitUntil(static_cast<SimTime>(10 * k + i));
      }
    });
  }
  sched.Run();
  EXPECT_EQ(body_entries, (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(sched.num_dispatches(), kProcesses * (1 + kYields));
  EXPECT_EQ(sched.num_fast_path_yields(), 0);
}

TEST(SchedulerBackendEquivalenceTest, TraceIsBitIdenticalAcrossBackends) {
  if (!FiberContext::Supported()) {
    GTEST_SKIP() << "fiber backend not available in this build";
  }
  const auto run_once = [](SchedulerBackend backend) {
    Scheduler sched(backend);
    std::vector<std::pair<int, SimTime>> trace;
    Resource disk("disk");
    Mailbox<int> box;
    Process* receiver = sched.Spawn([&](Process& p) {
      for (int k = 0; k < 6; ++k) {
        trace.emplace_back(100 + box.BlockingReceive(p), p.now());
      }
    });
    box.BindOwner(receiver);
    for (int i = 0; i < 3; ++i) {
      sched.Spawn([&, i](Process& p) {
        uint64_t state = static_cast<uint64_t>(i) * 2654435761u + 1;
        for (int k = 0; k < 2; ++k) {
          state = state * 6364136223846793005ULL + 1442695040888963407ULL;
          p.Advance(static_cast<SimTime>(state % 400));
          disk.Use(p, 75);
          box.Send(p, i, /*delay=*/state % 30);
          trace.emplace_back(i, p.now());
        }
      });
    }
    sched.Run();
    return std::make_pair(trace, sched.end_time());
  };
  EXPECT_EQ(run_once(SchedulerBackend::kThread),
            run_once(SchedulerBackend::kFiber));
}

}  // namespace
}  // namespace psj::sim

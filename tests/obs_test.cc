// Observability-layer tests (DESIGN.md §15): the sharded metrics registry
// keeps exact totals under concurrent writers plus a snapshot reader (the
// TSan target of the CI obs job), histogram shard merging round-trips
// through trace::Histogram::FromBuckets/Merge, quantile and percentile
// helpers survive their edge cases (empty, single-sample, q = 1.0,
// duplicate-heavy), exporters emit parseable Prometheus text and JSON with
// a stable empty shape, the periodic reporter actually ticks and rewrites
// its files, and the serve/native engines report registry totals that
// match their own internal statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "data/map_builder.h"
#include "native/native_join.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "serve/load_gen.h"
#include "serve/query.h"
#include "serve/service.h"
#include "trace/chrome_trace.h"
#include "trace/trace_sink.h"
#include "util/json_value.h"
#include "util/json_writer.h"

namespace psj {
namespace {

using obs::ComputeRates;
using obs::CounterRate;
using obs::ExportJsonSnapshot;
using obs::ExportPrometheusText;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::PeriodicReporter;
using obs::ReporterOptions;
using serve::ExactPercentile;
using serve::QueryDescriptor;
using serve::QueryResult;
using serve::ServiceConfig;
using serve::SpatialQueryService;
using trace::Histogram;

// ---- trace::Histogram quantiles, merge, and bucket round-trip ----

TEST(HistogramTest, EmptyHistogramAnswersZeroEverywhere) {
  Histogram h;
  EXPECT_EQ(h.total_count(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SingleSampleAnswersEveryQuantileWithThatSample) {
  Histogram h;
  h.Record(137);
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.ValueAtQuantile(q), 137) << "q=" << q;
  }
}

TEST(HistogramTest, DuplicateHeavySamplesStayInsideTheirBucket) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Record(64);  // Exact power of two: lowest value of its bucket.
  }
  h.Record(4096);
  // 1000 of 1001 samples are 64: every quantile up to ~0.999 interpolates
  // inside 64's power-of-two bucket [64, 128) — never jumps to the outlier
  // — and q = 1.0 clamps to the true maximum.
  EXPECT_GE(h.ValueAtQuantile(0.5), 64);
  EXPECT_LT(h.ValueAtQuantile(0.5), 128);
  EXPECT_GE(h.ValueAtQuantile(0.95), 64);
  EXPECT_LT(h.ValueAtQuantile(0.95), 128);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 4096);
  EXPECT_EQ(h.min(), 64);
  EXPECT_EQ(h.max(), 4096);
}

TEST(HistogramTest, QuantilesAreMonotoneAndClampedToMinMax) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) {
    h.Record(i);
  }
  int64_t previous = -1;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const int64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, previous);
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    previous = v;
  }
  // Log-bucket resolution: relative error under 2x around the median.
  const int64_t p50 = h.ValueAtQuantile(0.5);
  EXPECT_GE(p50, 2500);
  EXPECT_LE(p50, 10000);
}

TEST(HistogramTest, MergeAddsCountsAndWidensMinMax) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(5);
  b.Record(4000);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 4);
  EXPECT_EQ(a.sum(), 4035);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 4000);

  // Merging an empty histogram is the identity, both ways.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.total_count(), 4);
  empty.Merge(a);
  EXPECT_EQ(empty.total_count(), 4);
  EXPECT_EQ(empty.min(), 5);
  EXPECT_EQ(empty.max(), 4000);
}

TEST(HistogramTest, FromBucketsRoundTripsARecordedHistogram) {
  Histogram original;
  for (const int64_t v : {0, 1, 3, 64, 64, 900, 123456}) {
    original.Record(v);
  }
  int64_t buckets[Histogram::kNumBuckets];
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets[i] = original.bucket_count(i);
  }
  const Histogram rebuilt = Histogram::FromBuckets(
      buckets, original.sum(), original.min(), original.max());
  EXPECT_EQ(rebuilt.total_count(), original.total_count());
  EXPECT_EQ(rebuilt.sum(), original.sum());
  EXPECT_EQ(rebuilt.min(), original.min());
  EXPECT_EQ(rebuilt.max(), original.max());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(rebuilt.bucket_count(i), original.bucket_count(i)) << i;
  }
}

// ---- serve::ExactPercentile edge cases (satellite) ----

TEST(ExactPercentileTest, EmptyVectorAnswersZero) {
  EXPECT_EQ(ExactPercentile({}, 0.5), 0);
  EXPECT_EQ(ExactPercentile({}, 1.0), 0);
}

TEST(ExactPercentileTest, SingleElementAnswersEveryQuantile) {
  const std::vector<int64_t> one = {42};
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(ExactPercentile(one, q), 42) << "q=" << q;
  }
}

TEST(ExactPercentileTest, FullQuantileIsTheMaximumNotPastTheEnd) {
  const std::vector<int64_t> sorted = {1, 2, 3, 4, 5};
  EXPECT_EQ(ExactPercentile(sorted, 1.0), 5);
  EXPECT_EQ(ExactPercentile(sorted, 0.0), 1);
  EXPECT_EQ(ExactPercentile(sorted, 0.5), 3);
  // Out-of-range q clamps instead of indexing out of bounds.
  EXPECT_EQ(ExactPercentile(sorted, 1.5), 5);
  EXPECT_EQ(ExactPercentile(sorted, -0.5), 1);
}

TEST(ExactPercentileTest, DuplicateHeavyVector) {
  std::vector<int64_t> sorted(99, 7);
  sorted.push_back(1000);
  EXPECT_EQ(ExactPercentile(sorted, 0.5), 7);
  EXPECT_EQ(ExactPercentile(sorted, 0.98), 7);
  EXPECT_EQ(ExactPercentile(sorted, 1.0), 1000);
}

// ---- MetricsRegistry: lifecycle, sharding, snapshots ----

TEST(MetricsRegistryTest, DefineIsIdempotentByName) {
  MetricsRegistry registry(2);
  const obs::CounterId a = registry.DefineCounter("test_ops_count");
  const obs::CounterId b = registry.DefineCounter("test_ops_count");
  EXPECT_EQ(a.index, b.index);
  const obs::GaugeId g1 = registry.DefineGauge("test_depth_count");
  const obs::GaugeId g2 = registry.DefineGauge("test_depth_count");
  EXPECT_EQ(g1.index, g2.index);
  const obs::HistogramId h1 = registry.DefineHistogram("test_lat_us");
  const obs::HistogramId h2 = registry.DefineHistogram("test_lat_us");
  EXPECT_EQ(h1.index, h2.index);
}

TEST(MetricsRegistryTest, PreFreezeSnapshotHasAllZeroShape) {
  MetricsRegistry registry(4);
  registry.DefineCounter("test_ops_count");
  registry.DefineHistogram("test_lat_us");
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].value, 0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].histogram.total_count(), 0);
  EXPECT_FALSE(registry.frozen());
}

TEST(MetricsRegistryTest, CounterShardsSumAndHintWrapsModulo) {
  MetricsRegistry registry(3);
  const obs::CounterId ops = registry.DefineCounter("test_ops_count");
  registry.Freeze();
  registry.Freeze();  // Idempotent.
  for (int hint = 0; hint < 12; ++hint) {
    registry.Add(hint, ops, 1);  // Hints 3..11 wrap onto shards 0..2.
  }
  registry.Add(0, ops, 100);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::Counter* counter =
      snapshot.FindCounter("test_ops_count");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 112);
  EXPECT_EQ(snapshot.FindCounter("absent_count"), nullptr);
}

TEST(MetricsRegistryTest, GaugeIsLastWriteWins) {
  MetricsRegistry registry(2);
  const obs::GaugeId depth = registry.DefineGauge("test_depth_count");
  registry.Freeze();
  registry.Set(depth, 5);
  registry.Set(depth, 3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::Gauge* gauge = snapshot.FindGauge("test_depth_count");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 3);
}

TEST(MetricsRegistryTest, HistogramMergesAcrossShards) {
  MetricsRegistry registry(4);
  const obs::HistogramId lat = registry.DefineHistogram("test_lat_us");
  registry.Freeze();
  // 100 samples spread over every shard; totals must be exact.
  int64_t expected_sum = 0;
  for (int i = 1; i <= 100; ++i) {
    registry.Record(i % 4, lat, i);
    expected_sum += i;
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::HistogramEntry* entry =
      snapshot.FindHistogram("test_lat_us");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->histogram.total_count(), 100);
  EXPECT_EQ(entry->histogram.sum(), expected_sum);
  EXPECT_EQ(entry->histogram.min(), 1);
  EXPECT_EQ(entry->histogram.max(), 100);
  const int64_t p50 = entry->histogram.ValueAtQuantile(0.5);
  EXPECT_GE(p50, 25);
  EXPECT_LE(p50, 100);
}

// The CI obs job runs this under TSan: concurrent writers on distinct
// shard hints plus a reader snapshotting mid-flight must be race-free,
// and the post-join snapshot must be exact.
TEST(MetricsRegistryTest, ConcurrentWritersWithSnapshotReader) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  MetricsRegistry registry(kWriters);
  const obs::CounterId ops = registry.DefineCounter("test_ops_count");
  const obs::GaugeId depth = registry.DefineGauge("test_depth_count");
  const obs::HistogramId lat = registry.DefineHistogram("test_lat_us");
  registry.Freeze();

  std::atomic<bool> done{false};
  std::thread reader([&] {
    int64_t last = 0;
    // order: acquire — pairs with the release store after the writers
    // join, so the reader's final iterations see the completed totals.
    while (!done.load(std::memory_order_acquire)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      const MetricsSnapshot::Counter* counter =
          snapshot.FindCounter("test_ops_count");
      ASSERT_NE(counter, nullptr);
      // Monotone: counters only grow, and Snapshot never tears a cell.
      EXPECT_GE(counter->value, last);
      last = counter->value;
      const MetricsSnapshot::HistogramEntry* entry =
          snapshot.FindHistogram("test_lat_us");
      ASSERT_NE(entry, nullptr);
      // Count is derived from the bucket cells, so it is self-consistent
      // even mid-flight.
      int64_t bucket_total = 0;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        bucket_total += entry->histogram.bucket_count(i);
      }
      EXPECT_EQ(entry->histogram.total_count(), bucket_total);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        registry.Add(w, ops, 1);
        registry.Record(w, lat, (i % 1024) + 1);
        registry.Set(depth, i);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  // order: release — publishes the joined writers' updates to the reader
  // loop's acquire load above.
  done.store(true, std::memory_order_release);
  reader.join();

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.FindCounter("test_ops_count")->value,
            int64_t{kWriters} * kPerWriter);
  const Histogram& merged = snapshot.FindHistogram("test_lat_us")->histogram;
  EXPECT_EQ(merged.total_count(), int64_t{kWriters} * kPerWriter);
  EXPECT_EQ(merged.min(), 1);
  EXPECT_EQ(merged.max(), 1024);
}

// ---- Exporters ----

MetricsRegistry& PopulatedRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry(2);
    const obs::CounterId ops = r->DefineCounter("test_ops_count");
    const obs::GaugeId depth = r->DefineGauge("test_depth_count");
    const obs::HistogramId lat = r->DefineHistogram("test_lat_us");
    r->DefineHistogram("test_empty_us");  // Stays empty on purpose.
    r->Freeze();
    r->Add(0, ops, 41);
    r->Add(1, ops, 1);
    r->Set(depth, 7);
    for (int i = 1; i <= 8; ++i) {
      r->Record(i % 2, lat, i);
    }
    return r;
  }();
  return *registry;
}

TEST(ExportTest, PrometheusTextHasTypedSeriesAndCumulativeBuckets) {
  const std::string text = ExportPrometheusText(PopulatedRegistry().Snapshot());
  EXPECT_NE(text.find("# TYPE test_ops_count counter"), std::string::npos);
  EXPECT_NE(text.find("test_ops_count 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_depth_count gauge"), std::string::npos);
  EXPECT_NE(text.find("test_depth_count 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_lat_us histogram"), std::string::npos);
  // Samples 1..8: cumulative le="7" holds 7 of them, +Inf all 8.
  EXPECT_NE(text.find("test_lat_us_bucket{le=\"7\"} 7"), std::string::npos);
  EXPECT_NE(text.find("test_lat_us_bucket{le=\"+Inf\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_us_sum 36"), std::string::npos);
  EXPECT_NE(text.find("test_lat_us_count 8"), std::string::npos);
  // The empty histogram is still a complete scrapable series.
  EXPECT_NE(text.find("test_empty_us_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("test_empty_us_count 0"), std::string::npos);
}

TEST(ExportTest, JsonSnapshotParsesWithRatesAndQuantiles) {
  const std::vector<CounterRate> rates = {{"test_ops_count", 21.0}};
  const std::string text =
      ExportJsonSnapshot(PopulatedRegistry().Snapshot(), rates);
  const auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = *parsed;

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("test_ops_count")->AsDouble(), 42.0);

  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("test_depth_count")->AsDouble(), 7.0);

  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* lat = histograms->Find("test_lat_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("count")->AsDouble(), 8.0);
  EXPECT_EQ(lat->Find("min")->AsDouble(), 1.0);
  EXPECT_EQ(lat->Find("max")->AsDouble(), 8.0);
  ASSERT_NE(lat->Find("p50"), nullptr);
  ASSERT_NE(lat->Find("p99"), nullptr);

  // The empty histogram keeps the identical shape with zero values.
  const JsonValue* empty = histograms->Find("test_empty_us");
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->Find("count")->AsDouble(), 0.0);
  ASSERT_NE(empty->Find("p50"), nullptr);
  EXPECT_EQ(empty->Find("p50")->AsDouble(), 0.0);

  const JsonValue* per_sec = root.Find("rates_per_sec");
  ASSERT_NE(per_sec, nullptr);
  EXPECT_EQ(per_sec->Find("test_ops_count")->AsDouble(), 21.0);
}

TEST(ExportTest, JsonSnapshotWithoutRatesKeepsTheRatesObject) {
  const std::string text = ExportJsonSnapshot(PopulatedRegistry().Snapshot());
  const auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("rates_per_sec"), nullptr);
  EXPECT_TRUE(parsed->Find("rates_per_sec")->AsObject().empty());
}

TEST(ExportTest, WriteHistogramJsonEmptyHistogramIsValidAndAllZero) {
  Histogram empty;
  JsonWriter json;
  trace::WriteHistogramJson(json, empty);
  const auto parsed = JsonValue::Parse(json.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("count")->AsDouble(), 0.0);
  EXPECT_EQ(parsed->Find("sum")->AsDouble(), 0.0);
  EXPECT_EQ(parsed->Find("min")->AsDouble(), 0.0);
  EXPECT_EQ(parsed->Find("max")->AsDouble(), 0.0);
  EXPECT_EQ(parsed->Find("p50")->AsDouble(), 0.0);
  EXPECT_EQ(parsed->Find("p95")->AsDouble(), 0.0);
  EXPECT_EQ(parsed->Find("p99")->AsDouble(), 0.0);
}

// ---- Rates and the periodic reporter ----

TEST(ReporterTest, ComputeRatesDifferencesMatchingCounters) {
  MetricsSnapshot previous;
  previous.counters.push_back({"test_ops_count", 100});
  MetricsSnapshot current;
  current.counters.push_back({"test_ops_count", 150});
  current.counters.push_back({"test_new_count", 10});

  const std::vector<CounterRate> rates = ComputeRates(current, previous, 2.0);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0].name, "test_ops_count");
  EXPECT_DOUBLE_EQ(rates[0].per_second, 25.0);
  // A counter absent from the previous snapshot rates from zero.
  EXPECT_EQ(rates[1].name, "test_new_count");
  EXPECT_DOUBLE_EQ(rates[1].per_second, 5.0);

  EXPECT_TRUE(ComputeRates(current, previous, 0.0).empty());
  EXPECT_TRUE(ComputeRates(current, previous, -1.0).empty());
}

TEST(ReporterTest, PeriodicReporterTicksAndRewritesFiles) {
  MetricsRegistry registry(1);
  const obs::CounterId ops = registry.DefineCounter("test_ops_count");
  registry.Freeze();

  const std::string prom_path =
      testing::TempDir() + "/obs_reporter_test.prom";
  const std::string json_path =
      testing::TempDir() + "/obs_reporter_test.json";
  ReporterOptions options;
  options.interval_ms = 20;
  options.prometheus_path = prom_path;
  options.json_path = json_path;
  std::atomic<int64_t> callback_count{0};
  options.on_interval = [&](const MetricsSnapshot& current,
                            const MetricsSnapshot& previous,
                            double interval_seconds) {
    EXPECT_GE(interval_seconds, 0.0);
    EXPECT_GE(current.counters.size(), previous.counters.size());
    callback_count.fetch_add(1);
  };

  PeriodicReporter reporter(&registry, options);
  reporter.Start();
  registry.Add(0, ops, 9);
  // Real clock (sanctioned: src/obs is a wall-clock layer); generous
  // bound — at least one interval must fire within a second.
  for (int i = 0; i < 100 && reporter.intervals_emitted() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  reporter.Stop();
  reporter.Stop();  // Idempotent.

  EXPECT_GE(reporter.intervals_emitted(), 2);
  EXPECT_GE(callback_count.load(), 2);

  std::ifstream prom(prom_path);
  ASSERT_TRUE(prom.good());
  std::stringstream prom_text;
  prom_text << prom.rdbuf();
  EXPECT_NE(prom_text.str().find("test_ops_count 9"), std::string::npos);

  std::ifstream json(json_path);
  ASSERT_TRUE(json.good());
  std::stringstream json_text;
  json_text << json.rdbuf();
  const auto parsed = JsonValue::Parse(json_text.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("counters")->Find("test_ops_count")->AsDouble(),
            9.0);
  std::remove(prom_path.c_str());
  std::remove(json_path.c_str());
}

// ---- Serve integration: registry totals match ServiceStats ----

struct ObsServeFixture {
  ObjectStore store_r;
  ObjectStore store_s;
  RStarTree tree_r;
  RStarTree tree_s;

  ObsServeFixture(int count_r, int count_s, uint64_t seed)
      : store_r(GenerateUniformSegments(seed, count_r, 0.01)),
        store_s(GenerateUniformSegments(seed + 1, count_s, 0.02)),
        tree_r(BuildTreeFromObjects(1, store_r.objects())),
        tree_s(BuildTreeFromObjects(2, store_s.objects())) {}
};

TEST(ServeObsTest, RegistryCountersMatchServiceStats) {
  const ObsServeFixture fixture(400, 300, 91);
  ServiceConfig config;
  config.now_micros = [] { return int64_t{0}; };  // Skip the batch window.
  MetricsRegistry registry(config.num_threads + 1);
  config.metrics = &registry;
  SpatialQueryService service(&fixture.tree_r, &fixture.tree_s, config);

  // Pre-Start submissions exercise the lazy Freeze() on the submit path.
  std::atomic<int> callbacks{0};
  int accepted = 0;
  for (int i = 0; i < 24; ++i) {
    const double base = 0.2 + 0.02 * i;
    if (service
            .Submit(QueryDescriptor::Window(
                        Rect(base, base, base + 0.1, base + 0.1)),
                    [&callbacks](QueryResult) { callbacks.fetch_add(1); })
            .accepted) {
      ++accepted;
    }
  }
  EXPECT_TRUE(registry.frozen());
  service.Start();
  service.Stop();
  EXPECT_EQ(callbacks.load(), accepted);

  const auto stats = service.Stats();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.FindCounter("serve_submitted_count")->value,
            stats.submitted);
  EXPECT_EQ(snapshot.FindCounter("serve_accepted_count")->value,
            stats.accepted);
  EXPECT_EQ(snapshot.FindCounter("serve_completed_ok_count")->value,
            stats.completed_ok);
  EXPECT_EQ(snapshot.FindCounter("serve_deadline_miss_count")->value,
            stats.deadline_exceeded);
  EXPECT_EQ(snapshot.FindCounter("serve_batches_count")->value,
            stats.batches_executed);
  EXPECT_EQ(snapshot.FindCounter("serve_batched_queries_count")->value,
            stats.batched_queries);
  EXPECT_EQ(snapshot.FindCounter("serve_nodes_visited_count")->value,
            stats.descent.nodes_visited);

  const Histogram& latency =
      snapshot.FindHistogram("serve_latency_us")->histogram;
  EXPECT_EQ(latency.total_count(), stats.latency_us.total_count());
  EXPECT_EQ(latency.sum(), stats.latency_us.sum());
  EXPECT_EQ(latency.ValueAtQuantile(0.5), stats.LatencyP50());
  EXPECT_EQ(snapshot.FindHistogram("serve_batch_size_count")
                ->histogram.total_count(),
            stats.batches_executed);

  // Everything drained: the queue-depth gauge reads zero at the end.
  EXPECT_EQ(snapshot.FindGauge("serve_queue_depth_count")->value, 0);
}

TEST(ServeObsTest, SampledRequestSpansLandOnRequestTracks) {
  const ObsServeFixture fixture(300, 300, 92);
  trace::TraceSink sink;
  ServiceConfig config;
  config.now_micros = [] { return int64_t{0}; };
  config.trace = &sink;
  config.trace_sample_every = 2;  // Admission ids 1, 3, 5, 7 sampled.
  SpatialQueryService service(&fixture.tree_r, &fixture.tree_s, config);

  std::atomic<int> callbacks{0};
  for (int i = 0; i < 8; ++i) {
    const double base = 0.3 + 0.03 * i;
    ASSERT_TRUE(service
                    .Submit(QueryDescriptor::Window(
                                Rect(base, base, base + 0.1, base + 0.1)),
                            [&callbacks](QueryResult) {
                              callbacks.fetch_add(1);
                            })
                    .accepted);
  }
  service.Start();
  service.Stop();
  EXPECT_EQ(callbacks.load(), 8);

  int64_t request_spans = 0;
  for (const trace::TraceEvent& event : sink.events()) {
    if (event.category == trace::Category::kRequest) {
      ++request_spans;
      EXPECT_GE(event.track, serve::kRequestTrackBase);
      EXPECT_EQ(event.arg0 % 2, 1);  // Sampled ids are the odd ones.
      EXPECT_GT(event.arg1, 0);      // Batch attribution rides in arg1.
    }
  }
  EXPECT_EQ(request_spans, 4);
}

// ---- Native join integration: registry totals match per-worker stats ----

TEST(NativeObsTest, RegistryTotalsMatchPerWorkerStats) {
  const ObsServeFixture fixture(800, 700, 93);
  native::NativeJoinConfig config;
  config.num_threads = 2;
  MetricsRegistry registry(config.num_threads);
  config.metrics = &registry;

  const native::NativeJoinResult with_metrics =
      NativeRTreeJoin(fixture.tree_r, fixture.tree_s, config);

  int64_t tasks = 0;
  int64_t node_pairs = 0;
  int64_t candidates = 0;
  int64_t busy_us = 0;
  for (const native::NativeWorkerStats& w : with_metrics.per_worker) {
    tasks += w.tasks_executed;
    node_pairs += w.node_pairs_processed;
    candidates += w.candidates;
    busy_us += w.busy_us;
  }
  ASSERT_GT(tasks, 0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.FindCounter("native_tasks_executed_count")->value,
            tasks);
  EXPECT_EQ(snapshot.FindCounter("native_node_pairs_count")->value,
            node_pairs);
  EXPECT_EQ(snapshot.FindCounter("native_candidates_count")->value,
            candidates);
  EXPECT_EQ(snapshot.FindCounter("native_worker_busy_us")->value, busy_us);
  EXPECT_EQ(snapshot.FindHistogram("native_task_duration_us")
                ->histogram.total_count(),
            tasks);
  EXPECT_EQ(static_cast<int64_t>(with_metrics.candidates.size()), candidates);

  // The metrics-off run returns the same candidate set and leaves
  // busy_us at its documented zero.
  native::NativeJoinConfig off = config;
  off.metrics = nullptr;
  const native::NativeJoinResult without =
      NativeRTreeJoin(fixture.tree_r, fixture.tree_s, off);
  EXPECT_EQ(without.candidates.size(), with_metrics.candidates.size());
  for (const native::NativeWorkerStats& w : without.per_worker) {
    EXPECT_EQ(w.busy_us, 0);
  }
}

}  // namespace
}  // namespace psj

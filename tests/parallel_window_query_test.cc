#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/parallel_window_query.h"
#include "data/generator.h"
#include "data/map_builder.h"

namespace psj {
namespace {

class ParallelWindowQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Geography geo = Geography::Generate(100, 40);
    StreetsSpec streets;
    streets.num_objects = 4'000;
    store_ = new ObjectStore(GenerateStreetsMap(geo, streets));
    tree_ = new RStarTree(BuildTreeFromObjects(1, store_->objects()));
  }

  static void TearDownTestSuite() {
    delete tree_;
    delete store_;
    tree_ = nullptr;
    store_ = nullptr;
  }

  static WindowQueryResult MustRun(const Rect& window,
                                   const WindowQueryConfig& config) {
    ParallelWindowQuery query(tree_, store_);
    auto result = query.Run(window, config);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  // Linear-scan references.
  static std::set<uint64_t> ExpectedCandidates(const Rect& window) {
    std::set<uint64_t> ids;
    for (const MapObject& obj : store_->objects()) {
      if (obj.Mbr().Intersects(window)) ids.insert(obj.id);
    }
    return ids;
  }
  static std::set<uint64_t> ExpectedAnswers(const Rect& window) {
    std::set<uint64_t> ids;
    for (const MapObject& obj : store_->objects()) {
      if (obj.Mbr().Intersects(window) &&
          obj.geometry.IntersectsRect(window)) {
        ids.insert(obj.id);
      }
    }
    return ids;
  }

  static ObjectStore* store_;
  static RStarTree* tree_;
};

ObjectStore* ParallelWindowQueryTest::store_ = nullptr;
RStarTree* ParallelWindowQueryTest::tree_ = nullptr;

const Rect kWindow(0.2, 0.2, 0.6, 0.55);

TEST_F(ParallelWindowQueryTest, MatchesLinearScan) {
  WindowQueryConfig config;
  config.num_processors = 6;
  config.num_disks = 6;
  config.total_buffer_pages = 120;
  config.collect_ids = true;
  const WindowQueryResult result = MustRun(kWindow, config);
  const std::set<uint64_t> candidates(result.candidate_ids.begin(),
                                      result.candidate_ids.end());
  EXPECT_EQ(candidates.size(), result.candidate_ids.size())
      << "duplicate candidates";
  EXPECT_EQ(candidates, ExpectedCandidates(kWindow));
  const std::set<uint64_t> answers(result.answer_ids.begin(),
                                   result.answer_ids.end());
  EXPECT_EQ(answers, ExpectedAnswers(kWindow));
  EXPECT_FALSE(candidates.empty());
}

TEST_F(ParallelWindowQueryTest, AgreesWithTreeWindowQuery) {
  WindowQueryConfig config;
  config.collect_ids = true;
  config.compute_answers = false;
  const WindowQueryResult result = MustRun(kWindow, config);
  auto tree_hits = tree_->WindowQuery(kWindow);
  std::sort(tree_hits.begin(), tree_hits.end());
  std::vector<uint64_t> parallel_hits = result.candidate_ids;
  std::sort(parallel_hits.begin(), parallel_hits.end());
  EXPECT_EQ(parallel_hits, tree_hits);
}

TEST_F(ParallelWindowQueryTest, AllVariantsProduceSameResult) {
  const std::set<uint64_t> expected = ExpectedCandidates(kWindow);
  for (BufferType buffer : {BufferType::kLocal, BufferType::kGlobal}) {
    for (TaskAssignment assignment :
         {TaskAssignment::kStaticRange, TaskAssignment::kStaticRoundRobin,
          TaskAssignment::kDynamic}) {
      for (ReassignmentLevel reassignment :
           {ReassignmentLevel::kNone, ReassignmentLevel::kAllLevels}) {
        WindowQueryConfig config;
        config.buffer_type = buffer;
        config.assignment = assignment;
        config.reassignment = reassignment;
        config.num_processors = 5;
        config.num_disks = 3;
        config.total_buffer_pages = 100;
        config.collect_ids = true;
        const WindowQueryResult result = MustRun(kWindow, config);
        const std::set<uint64_t> ids(result.candidate_ids.begin(),
                                     result.candidate_ids.end());
        EXPECT_EQ(ids, expected)
            << "buffer=" << static_cast<int>(buffer)
            << " assignment=" << static_cast<int>(assignment)
            << " reassignment=" << static_cast<int>(reassignment);
      }
    }
  }
}

TEST_F(ParallelWindowQueryTest, DeterministicAcrossRuns) {
  WindowQueryConfig config;
  config.num_processors = 8;
  config.num_disks = 4;
  const auto a = MustRun(kWindow, config);
  const auto b = MustRun(kWindow, config);
  EXPECT_EQ(a.stats.response_time, b.stats.response_time);
  EXPECT_EQ(a.stats.total_disk_accesses, b.stats.total_disk_accesses);
}

TEST_F(ParallelWindowQueryTest, ParallelismReducesResponseTime) {
  WindowQueryConfig narrow;
  narrow.num_processors = 1;
  narrow.num_disks = 1;
  narrow.total_buffer_pages = 100;
  const Rect big_window(0.0, 0.0, 1.0, 1.0);
  const auto t1 = MustRun(big_window, narrow).stats.response_time;
  WindowQueryConfig wide = narrow;
  wide.num_processors = 8;
  wide.num_disks = 8;
  wide.total_buffer_pages = 800;
  const auto t8 = MustRun(big_window, wide).stats.response_time;
  EXPECT_LT(t8, t1);
  EXPECT_GT(t8, t1 / 8 / 2);  // Speed-up cannot wildly exceed n.
}

TEST_F(ParallelWindowQueryTest, EmptyWindowRegionYieldsNothing) {
  WindowQueryConfig config;
  config.collect_ids = true;
  const WindowQueryResult result = MustRun(Rect(5.0, 5.0, 6.0, 6.0), config);
  EXPECT_TRUE(result.candidate_ids.empty());
  EXPECT_EQ(result.stats.total_candidates, 0);
}

TEST_F(ParallelWindowQueryTest, InvalidInputsRejected) {
  ParallelWindowQuery query(tree_, store_);
  WindowQueryConfig config;
  EXPECT_TRUE(query.Run(Rect(1, 1, 0, 0), config)
                  .status()
                  .IsInvalidArgument());
  config.num_processors = 0;
  EXPECT_TRUE(query.Run(kWindow, config).status().IsInvalidArgument());

  ParallelWindowQuery no_store(tree_, nullptr);
  WindowQueryConfig wants_answers;
  EXPECT_TRUE(
      no_store.Run(kWindow, wants_answers).status().IsInvalidArgument());
  wants_answers.compute_answers = false;
  EXPECT_TRUE(no_store.Run(kWindow, wants_answers).ok());
}

TEST_F(ParallelWindowQueryTest, SharedNothingAndHilbertPreserveResults) {
  const std::set<uint64_t> expected = ExpectedCandidates(kWindow);
  for (BufferType buffer : {BufferType::kGlobal, BufferType::kSharedNothing}) {
    for (PagePlacement placement :
         {PagePlacement::kModulo, PagePlacement::kHilbertStriping}) {
      WindowQueryConfig config;
      config.buffer_type = buffer;
      config.placement = placement;
      config.num_processors = 6;
      config.num_disks = 6;
      config.total_buffer_pages = 120;
      config.collect_ids = true;
      const WindowQueryResult result = MustRun(kWindow, config);
      const std::set<uint64_t> ids(result.candidate_ids.begin(),
                                   result.candidate_ids.end());
      EXPECT_EQ(ids, expected)
          << ToString(buffer) << "/" << ToString(placement);
    }
  }
}

TEST(WindowQueryRefinementTest, DistinguishesMbrFromGeometry) {
  // Hand-built store: a diagonal segment whose MBR overlaps the window
  // corner while the geometry stays outside (false hit), plus one segment
  // crossing the window (answer).
  std::vector<MapObject> objects;
  objects.push_back(
      MapObject{0, Polyline({{0.35, 0.47}, {0.43, 0.55}})});  // False hit.
  objects.push_back(
      MapObject{1, Polyline({{0.45, 0.45}, {0.48, 0.48}})});  // Answer.
  const ObjectStore store(std::move(objects));
  const RStarTree tree = BuildTreeFromObjects(7, store.objects());
  const Rect window(0.4, 0.4, 0.5, 0.5);
  ASSERT_TRUE(store.Get(0).Mbr().Intersects(window));
  ASSERT_FALSE(store.Get(0).geometry.IntersectsRect(window));

  ParallelWindowQuery query(&tree, &store);
  WindowQueryConfig config;
  config.num_processors = 2;
  config.num_disks = 2;
  config.collect_ids = true;
  auto result = query.Run(window, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidate_ids.size(), 2u);
  ASSERT_EQ(result->answer_ids.size(), 1u);
  EXPECT_EQ(result->answer_ids[0], 1u);
}

TEST_F(ParallelWindowQueryTest, StatsConsistent) {
  WindowQueryConfig config;
  config.num_processors = 4;
  config.num_disks = 4;
  const auto stats = MustRun(kWindow, config).stats;
  int64_t candidates = 0;
  for (const auto& p : stats.per_processor) {
    candidates += p.candidates;
    EXPECT_LE(p.answers, p.candidates);
  }
  EXPECT_EQ(candidates, stats.total_candidates);
  EXPECT_GT(stats.num_tasks, 0);
  EXPECT_GT(stats.total_disk_accesses, 0);
}

}  // namespace
}  // namespace psj

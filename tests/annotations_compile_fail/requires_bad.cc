// Seeded violation: calls a PSJ_REQUIRES(mu_) accessor of the serving
// layer without acquiring the admission mutex first. Under clang
// -Wthread-safety -Werror this translation unit MUST fail to compile
// ("calling function 'QueueDepthLocked' requires holding mutex"); if it
// ever compiles there, the analyze gate has stopped biting.
#include <cstddef>

#include "serve/service.h"

size_t Probe(psj::serve::SpatialQueryService& service) {
  return service.QueueDepthLocked();  // admission_mutex() not held
}

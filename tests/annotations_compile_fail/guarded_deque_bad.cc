// Seeded violation: reads the work pool's dynamic-assignment queue — a
// member PSJ_GUARDED_BY(shared_mu_) — without holding the lock. Under
// clang -Wthread-safety -Werror this translation unit MUST fail to
// compile ("requires holding mutex 'pool.shared_mu_'"); if it ever
// compiles there, the analyze gate has stopped biting.
#include <cstddef>

#include "native/work_pool.h"

size_t Probe(psj::native::WorkStealingPool<int>& pool) {
  return pool.SharedQueueLocked().size();  // no lock held
}

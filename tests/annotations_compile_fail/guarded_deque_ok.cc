// Positive control for guarded_deque_bad.cc: the same read of the
// dynamic-assignment queue, but holding the shared-queue capability the
// member is PSJ_GUARDED_BY. Must compile under -Wthread-safety -Werror.
#include <cstddef>

#include "native/work_pool.h"
#include "util/mutex.h"

namespace {

size_t SharedDepth(psj::native::WorkStealingPool<int>& pool) {
  psj::util::MutexLock lock(&pool.shared_mutex());
  return pool.SharedQueueLocked().size();
}

}  // namespace

size_t Probe(psj::native::WorkStealingPool<int>& pool) {
  return SharedDepth(pool);
}

// Positive control for requires_bad.cc: the same admission-queue probe,
// but holding the capability returned by admission_mutex() — which
// PSJ_RETURN_CAPABILITY ties to the service's internal mu_. Must compile
// under -Wthread-safety -Werror.
#include <cstddef>

#include "serve/service.h"
#include "util/mutex.h"

size_t Probe(psj::serve::SpatialQueryService& service) {
  psj::util::MutexLock lock(&service.admission_mutex());
  return service.QueueDepthLocked();
}

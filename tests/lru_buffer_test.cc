#include <gtest/gtest.h>

#include "buffer/lru_buffer.h"

namespace psj {
namespace {

PageId P(uint32_t n) { return PageId{0, n}; }

TEST(LruBufferTest, InsertUntilCapacityNoEviction) {
  LruBuffer buffer(3);
  EXPECT_FALSE(buffer.InsertAndMaybeEvict(P(1)).has_value());
  EXPECT_FALSE(buffer.InsertAndMaybeEvict(P(2)).has_value());
  EXPECT_FALSE(buffer.InsertAndMaybeEvict(P(3)).has_value());
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_TRUE(buffer.Contains(P(1)));
  EXPECT_TRUE(buffer.Contains(P(3)));
}

TEST(LruBufferTest, EvictsLeastRecentlyUsed) {
  LruBuffer buffer(2);
  buffer.InsertAndMaybeEvict(P(1));
  buffer.InsertAndMaybeEvict(P(2));
  const auto evicted = buffer.InsertAndMaybeEvict(P(3));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, P(1));
  EXPECT_FALSE(buffer.Contains(P(1)));
  EXPECT_TRUE(buffer.Contains(P(2)));
  EXPECT_TRUE(buffer.Contains(P(3)));
}

TEST(LruBufferTest, TouchRefreshesRecency) {
  LruBuffer buffer(2);
  buffer.InsertAndMaybeEvict(P(1));
  buffer.InsertAndMaybeEvict(P(2));
  EXPECT_TRUE(buffer.Touch(P(1)));  // Now 2 is the LRU.
  const auto evicted = buffer.InsertAndMaybeEvict(P(3));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, P(2));
}

TEST(LruBufferTest, TouchMissingReturnsFalse) {
  LruBuffer buffer(2);
  EXPECT_FALSE(buffer.Touch(P(9)));
}

TEST(LruBufferTest, ReinsertingResidentPageOnlyTouches) {
  LruBuffer buffer(2);
  buffer.InsertAndMaybeEvict(P(1));
  buffer.InsertAndMaybeEvict(P(2));
  EXPECT_FALSE(buffer.InsertAndMaybeEvict(P(1)).has_value());
  EXPECT_EQ(buffer.size(), 2u);
  // 2 became LRU after re-inserting 1.
  EXPECT_EQ(buffer.LeastRecentlyUsed(), P(2));
}

TEST(LruBufferTest, EraseRemovesPage) {
  LruBuffer buffer(2);
  buffer.InsertAndMaybeEvict(P(1));
  EXPECT_TRUE(buffer.Erase(P(1)));
  EXPECT_FALSE(buffer.Erase(P(1)));
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.LeastRecentlyUsed().has_value());
}

TEST(LruBufferTest, ZeroCapacityCachesNothing) {
  LruBuffer buffer(0);
  const auto evicted = buffer.InsertAndMaybeEvict(P(1));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, P(1));
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.Contains(P(1)));
}

TEST(LruBufferTest, DistinguishesFileIds) {
  LruBuffer buffer(4);
  buffer.InsertAndMaybeEvict(PageId{1, 7});
  EXPECT_FALSE(buffer.Contains(PageId{2, 7}));
  EXPECT_TRUE(buffer.Contains(PageId{1, 7}));
}

TEST(LruBufferTest, LongAccessSequenceKeepsSizeBounded) {
  LruBuffer buffer(16);
  for (uint32_t i = 0; i < 1000; ++i) {
    buffer.InsertAndMaybeEvict(P(i % 40));
    ASSERT_LE(buffer.size(), 16u);
  }
  // The 16 most recently used of the cycle must be resident.
  EXPECT_TRUE(buffer.Contains(P(999 % 40)));
}

}  // namespace
}  // namespace psj

// Speedup-profiler tests: the eight-term decomposition partitions every
// processor's horizon exactly (empty traces, single-event traces and
// zero-duration runs included), and the accounting invariant
// sum(terms) == n * response_time holds for real traced runs of all three
// paper variants.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.h"
#include "report/speedup_profiler.h"
#include "sim/fiber_context.h"
#include "trace/trace_sink.h"

namespace psj {
namespace {

using report::DecomposeSpeedup;
using report::ProcessorBreakdown;
using report::SpeedupDecomposition;

JoinStats StatsWith(std::vector<sim::SimTime> last_work,
                    sim::SimTime response_time,
                    sim::SimTime task_creation_time) {
  JoinStats stats;
  stats.per_processor.resize(last_work.size());
  for (size_t i = 0; i < last_work.size(); ++i) {
    stats.per_processor[i].last_work_time = last_work[i];
  }
  stats.response_time = response_time;
  stats.task_creation_time = task_creation_time;
  return stats;
}

TEST(SpeedupProfilerTest, EmptyTraceStillPartitionsTheHorizon) {
  trace::TraceSink sink;
  const JoinStats stats = StatsWith({1000, 600}, 1000, 200);
  const SpeedupDecomposition d = DecomposeSpeedup(sink, stats, "empty");

  ASSERT_EQ(d.per_processor.size(), 2u);
  EXPECT_EQ(d.total_virtual_time, 2000);
  EXPECT_EQ(d.totals.Total(), 2000);
  // cpu 0 worked until the end: the pre-assignment window is sequential,
  // the rest is starvation (nothing shows it working, but the run was on).
  EXPECT_EQ(d.per_processor[0].sequential, 200);
  EXPECT_EQ(d.per_processor[0].starvation, 800);
  EXPECT_EQ(d.per_processor[0].imbalance, 0);
  // cpu 1 finished at 600: everything after that is terminal imbalance.
  EXPECT_EQ(d.per_processor[1].sequential, 200);
  EXPECT_EQ(d.per_processor[1].starvation, 400);
  EXPECT_EQ(d.per_processor[1].imbalance, 400);
}

TEST(SpeedupProfilerTest, SingleEventTrace) {
  trace::TraceSink sink;
  sink.Span(0, trace::Category::kTask, "task", 100, 300);
  const JoinStats stats = StatsWith({300}, 400, 0);
  const SpeedupDecomposition d = DecomposeSpeedup(sink, stats, "single");

  ASSERT_EQ(d.per_processor.size(), 1u);
  EXPECT_EQ(d.per_processor[0].compute, 200);
  EXPECT_EQ(d.per_processor[0].starvation, 100);  // [0, 100) before work.
  EXPECT_EQ(d.per_processor[0].imbalance, 100);   // [300, 400) after.
  EXPECT_EQ(d.per_processor[0].Total(), 400);
  EXPECT_EQ(d.totals.Total(), d.total_virtual_time);
}

TEST(SpeedupProfilerTest, ZeroDurationRun) {
  trace::TraceSink sink;
  const JoinStats stats = StatsWith({0, 0, 0}, 0, 0);
  const SpeedupDecomposition d = DecomposeSpeedup(sink, stats, "zero");

  EXPECT_EQ(d.num_processors, 3);
  EXPECT_EQ(d.total_virtual_time, 0);
  EXPECT_EQ(d.totals.Total(), 0);
  EXPECT_EQ(d.UsefulFraction(), 0.0);
  for (const ProcessorBreakdown& p : d.per_processor) {
    EXPECT_EQ(p.Total(), 0);
  }
}

TEST(SpeedupProfilerTest, NestedSpansDoNotDoubleCount) {
  trace::TraceSink sink;
  // A task that spends [20, 60) blocked on a disk read, of which [20, 35)
  // was queueing (disk track 1000, arg0 = requester cpu 0).
  sink.Span(0, trace::Category::kTask, "task", 10, 90);
  sink.Span(0, trace::Category::kBufferMiss, "disk read", 20, 60);
  sink.Span(trace::DiskTrack(0), trace::Category::kDiskQueue, "queue", 20, 35,
            /*arg0=*/0);
  const JoinStats stats = StatsWith({90}, 100, 5);
  const SpeedupDecomposition d = DecomposeSpeedup(sink, stats, "nested");

  ASSERT_EQ(d.per_processor.size(), 1u);
  const ProcessorBreakdown& p = d.per_processor[0];
  EXPECT_EQ(p.disk_queue, 15);   // [20, 35): queue beats the miss span.
  EXPECT_EQ(p.disk_service, 25); // [35, 60): the rest of the miss.
  EXPECT_EQ(p.compute, 40);      // [10, 20) + [60, 90).
  EXPECT_EQ(p.sequential, 5);    // Idle [0, 5) before creation finished.
  EXPECT_EQ(p.starvation, 5);    // Idle [5, 10) while the run was going.
  EXPECT_EQ(p.imbalance, 10);    // Idle [90, 100).
  EXPECT_EQ(p.Total(), 100);
}

TEST(SpeedupProfilerTest, CreationPhaseIoCountsAsSequential) {
  trace::TraceSink sink;
  // cpu 0 reads pages while creating tasks: that I/O is part of the
  // sequential fraction, not parallel disk time.
  sink.Span(0, trace::Category::kTaskCreation, "task creation", 0, 50);
  sink.Span(0, trace::Category::kBufferMiss, "disk read", 10, 40);
  sink.Span(0, trace::Category::kTask, "task", 50, 80);
  const JoinStats stats = StatsWith({80}, 80, 50);
  const SpeedupDecomposition d = DecomposeSpeedup(sink, stats, "creation");

  const ProcessorBreakdown& p = d.per_processor[0];
  EXPECT_EQ(p.sequential, 50);
  EXPECT_EQ(p.disk_service, 0);
  EXPECT_EQ(p.compute, 30);
  EXPECT_EQ(p.Total(), 80);
}

TEST(SpeedupProfilerTest, SpansClippedToHorizon) {
  trace::TraceSink sink;
  sink.Span(0, trace::Category::kTask, "task", -50, 120);
  const JoinStats stats = StatsWith({100}, 100, 0);
  const SpeedupDecomposition d = DecomposeSpeedup(sink, stats, "clip");
  EXPECT_EQ(d.per_processor[0].compute, 100);
  EXPECT_EQ(d.per_processor[0].Total(), 100);
}

// The tentpole invariant on real runs: for every paper variant, the terms
// of every processor sum to the response time, so the decomposition never
// loses or invents virtual time.
TEST(SpeedupProfilerTest, DecompositionSumsToTotalAcrossVariants) {
  PaperWorkloadSpec spec;
  const PaperWorkload workload(spec.Scaled(0.02));
  for (ParallelJoinConfig config :
       {ParallelJoinConfig::Gd(), ParallelJoinConfig::Lsr(),
        ParallelJoinConfig::Gsrr()}) {
    config.num_processors = 4;
    config.num_disks = 4;
    config.reassignment = ReassignmentLevel::kAllLevels;
    trace::TraceSink sink;
    config.trace = &sink;
    auto result = workload.RunJoin(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    const SpeedupDecomposition d =
        DecomposeSpeedup(sink, result->stats, config.Describe());
    EXPECT_EQ(d.total_virtual_time,
              result->stats.response_time * 4) << config.Describe();
    sim::SimTime per_processor_sum = 0;
    for (const ProcessorBreakdown& p : d.per_processor) {
      EXPECT_EQ(p.Total(), result->stats.response_time)
          << config.Describe() << " cpu " << p.processor;
      per_processor_sum += p.Total();
    }
    EXPECT_EQ(d.totals.Total(), per_processor_sum);
    EXPECT_EQ(d.totals.Total(), d.total_virtual_time);
    EXPECT_GT(d.UsefulFraction(), 0.0);
    EXPECT_LE(d.UsefulFraction(), 1.0);
    // A real parallel run does work and reads pages.
    EXPECT_GT(d.totals.compute, 0);
    EXPECT_GT(d.totals.disk_service, 0);
    EXPECT_GT(d.totals.sequential, 0);
  }
}

// The profiler is a pure function of (trace, stats): identical runs on the
// two scheduler backends decompose identically.
TEST(SpeedupProfilerTest, BackendInvariance) {
  if (!sim::FiberContext::Supported()) {
    GTEST_SKIP() << "fiber backend not available in this build";
  }
  PaperWorkloadSpec spec;
  const PaperWorkload workload(spec.Scaled(0.02));
  std::vector<SpeedupDecomposition> decompositions;
  for (const sim::SchedulerBackend backend :
       {sim::SchedulerBackend::kThread, sim::SchedulerBackend::kFiber}) {
    ParallelJoinConfig config = ParallelJoinConfig::Gd();
    config.num_processors = 4;
    config.num_disks = 4;
    config.scheduler_backend = backend;
    trace::TraceSink sink;
    config.trace = &sink;
    auto result = workload.RunJoin(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    decompositions.push_back(DecomposeSpeedup(sink, result->stats, "x"));
  }
  EXPECT_EQ(decompositions[0].totals, decompositions[1].totals);
  EXPECT_EQ(decompositions[0].per_processor,
            decompositions[1].per_processor);
  EXPECT_EQ(decompositions[0].Format(), decompositions[1].Format());
}

}  // namespace
}  // namespace psj

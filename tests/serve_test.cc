// Serving-layer tests: the batched descent is set-equal to the
// single-query oracle (WindowQuery / KnnQuery / sequential join) for every
// query type — including empty-result and duplicate-heavy batches — and the
// service keeps its admission contract: bounded queue with reject-with-
// reason backpressure, per-query deadlines at node-visit granularity
// (zero-deadline queries expire at the first check), and exactly one
// callback per accepted query, including during shutdown drain.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <utility>
#include <vector>

#include "data/generator.h"
#include "data/map_builder.h"
#include "join/sequential_join.h"
#include "serve/batch_descent.h"
#include "serve/load_gen.h"
#include "serve/query.h"
#include "serve/service.h"

namespace psj {
namespace {

using serve::BatchWindowOutput;
using serve::BatchWindowQueries;
using serve::LoadGenOptions;
using serve::QueryDescriptor;
using serve::QueryResult;
using serve::QueryStatus;
using serve::QueryType;
using serve::RegionJoinOutput;
using serve::RegionJoinQuery;
using serve::RejectReason;
using serve::RunOpenLoopLoad;
using serve::ServiceConfig;
using serve::SpatialQueryService;
using serve::Submission;
using serve::TreeTarget;
using serve::TripleIntersects;
using Pair = std::pair<uint64_t, uint64_t>;

std::vector<uint64_t> Sorted(std::vector<uint64_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::set<Pair> AsSet(const std::vector<Pair>& pairs) {
  return std::set<Pair>(pairs.begin(), pairs.end());
}

struct ServeFixture {
  ObjectStore store_r;
  ObjectStore store_s;
  RStarTree tree_r;
  RStarTree tree_s;

  ServeFixture(int count_r, int count_s, uint64_t seed)
      : store_r(GenerateUniformSegments(seed, count_r, 0.01)),
        store_s(GenerateUniformSegments(seed + 1, count_s, 0.02)),
        tree_r(BuildTreeFromObjects(1, store_r.objects())),
        tree_s(BuildTreeFromObjects(2, store_s.objects())) {}

  // A spread of query windows: hotspot-overlapping, scattered, duplicated,
  // degenerate (point-like), and guaranteed-empty (outside the domain).
  std::vector<Rect> MixedWindows() const {
    std::vector<Rect> windows;
    for (int i = 0; i < 12; ++i) {
      const double base = 0.3 + 0.01 * i;
      windows.push_back(Rect(base, base, base + 0.08, base + 0.08));
    }
    for (int i = 0; i < 8; ++i) {
      const double base = 0.1 * i;
      windows.push_back(Rect(base, 0.9 - base, base + 0.02, 0.92 - base));
    }
    for (int i = 0; i < 6; ++i) {  // Duplicates of one hot window.
      windows.push_back(Rect(0.4, 0.4, 0.5, 0.5));
    }
    windows.push_back(Rect(0.55, 0.55, 0.55, 0.55));  // Degenerate point.
    windows.push_back(Rect(5.0, 5.0, 6.0, 6.0));      // Empty: off-domain.
    windows.push_back(tree_r.root_mbr());             // Everything.
    return windows;
  }
};

// ---- Batched descent vs the single-query oracle (satellite 1) ----

TEST(BatchDescentTest, WindowBatchMatchesWindowQuery) {
  const ServeFixture fixture(900, 800, 21);
  const std::vector<Rect> windows = fixture.MixedWindows();
  BatchWindowOutput out;
  serve::DescentStats stats;
  BatchWindowQueries(fixture.tree_r, windows, {}, nullptr, &out, &stats);
  ASSERT_EQ(out.ids.size(), windows.size());
  for (size_t q = 0; q < windows.size(); ++q) {
    EXPECT_TRUE(out.complete[q]);
    const auto oracle = Sorted(fixture.tree_r.WindowQuery(windows[q]));
    const auto got = Sorted(out.ids[q]);
    EXPECT_EQ(got, oracle) << "query " << q;
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()).size(), got.size())
        << "duplicate ids for query " << q;
  }
  EXPECT_GT(stats.nodes_visited, 0);
  // The shared traversal visits upper nodes once per batch, not once per
  // query: strictly fewer scans than single-query descents would make.
  EXPECT_LT(stats.node_scans,
            static_cast<int64_t>(windows.size()) * stats.nodes_visited);
}

TEST(BatchDescentTest, BatchOfOneMatchesWindowQuery) {
  const ServeFixture fixture(600, 500, 22);
  const Rect window(0.25, 0.25, 0.45, 0.45);
  BatchWindowOutput out;
  BatchWindowQueries(fixture.tree_r, {&window, 1}, {}, nullptr, &out);
  ASSERT_EQ(out.ids.size(), 1u);
  EXPECT_EQ(Sorted(out.ids[0]), Sorted(fixture.tree_r.WindowQuery(window)));
}

TEST(BatchDescentTest, DuplicateHeavyBatchGivesIdenticalAnswers) {
  const ServeFixture fixture(700, 600, 23);
  const Rect hot(0.4, 0.4, 0.55, 0.55);
  std::vector<Rect> windows(64, hot);
  BatchWindowOutput out;
  BatchWindowQueries(fixture.tree_r, windows, {}, nullptr, &out);
  const auto oracle = Sorted(fixture.tree_r.WindowQuery(hot));
  ASSERT_FALSE(oracle.empty());
  for (size_t q = 0; q < windows.size(); ++q) {
    EXPECT_EQ(Sorted(out.ids[q]), oracle) << "duplicate query " << q;
  }
}

TEST(BatchDescentTest, EmptyBatchAndEmptyResults) {
  const ServeFixture fixture(300, 300, 24);
  BatchWindowOutput out;
  BatchWindowQueries(fixture.tree_r, {}, {}, nullptr, &out);
  EXPECT_TRUE(out.ids.empty());

  std::vector<Rect> windows(16, Rect(7.0, 7.0, 7.5, 7.5));  // All empty.
  BatchWindowQueries(fixture.tree_r, windows, {}, nullptr, &out);
  for (size_t q = 0; q < windows.size(); ++q) {
    EXPECT_TRUE(out.complete[q]);
    EXPECT_TRUE(out.ids[q].empty());
  }
}

// The region-join oracle: the sequential join's candidate pairs whose MBRs
// share a point with the region.
std::set<Pair> RegionOracle(const ServeFixture& fixture, const Rect& region) {
  const auto all =
      SequentialRTreeJoin(fixture.tree_r, fixture.tree_s).candidates;
  std::set<Pair> expected;
  for (const auto& [r, s] : all) {
    if (TripleIntersects(fixture.store_r.Get(r).Mbr(),
                         fixture.store_s.Get(s).Mbr(), region)) {
      expected.insert({r, s});
    }
  }
  return expected;
}

TEST(BatchDescentTest, RegionJoinMatchesSequentialJoinFilter) {
  const ServeFixture fixture(800, 700, 25);
  for (const Rect& region :
       {Rect(0.3, 0.3, 0.5, 0.5), Rect(0.0, 0.0, 1.0, 1.0),
        Rect(0.42, 0.58, 0.43, 0.59), Rect(6.0, 6.0, 7.0, 7.0)}) {
    RegionJoinOutput out;
    RegionJoinQuery(fixture.tree_r, fixture.tree_s, region, -1, nullptr,
                    &out);
    EXPECT_TRUE(out.complete);
    EXPECT_EQ(out.pairs.size(), AsSet(out.pairs).size())
        << "duplicate pairs";
    EXPECT_EQ(AsSet(out.pairs), RegionOracle(fixture, region));
  }
}

TEST(BatchDescentTest, RegionJoinHandlesHeightMismatch) {
  const ServeFixture big(900, 40, 26);
  const ObjectStore tiny_store(GenerateUniformSegments(99, 10, 0.05));
  const RStarTree tiny = BuildTreeFromObjects(2, tiny_store.objects());
  ASSERT_NE(big.tree_r.height(), tiny.height());

  const Rect region(0.2, 0.2, 0.8, 0.8);
  RegionJoinOutput out;
  RegionJoinQuery(big.tree_r, tiny, region, -1, nullptr, &out);

  std::set<Pair> expected;
  for (const MapObject& r : big.store_r.objects()) {
    for (const MapObject& s : tiny_store.objects()) {
      if (TripleIntersects(r.Mbr(), s.Mbr(), region)) {
        expected.insert({r.id, s.id});
      }
    }
  }
  EXPECT_EQ(AsSet(out.pairs), expected);
}

// ---- Deadlines at node-visit granularity (satellite 4) ----

TEST(BatchDescentTest, DeadlineExpiryMidDescentYieldsPartialSubset) {
  const ServeFixture fixture(900, 800, 27);
  const std::vector<Rect> windows(8, fixture.tree_r.root_mbr());
  // A fake clock ticking one µs per node visit; deadlines stagger so some
  // queries expire after a few visits and some never do.
  int64_t now = 0;
  const auto clock = [&now] { return now++; };
  std::vector<int64_t> deadlines;
  for (size_t q = 0; q < windows.size(); ++q) {
    deadlines.push_back(q < 4 ? static_cast<int64_t>(q + 1) : -1);
  }
  BatchWindowOutput out;
  BatchWindowQueries(fixture.tree_r, windows, deadlines, clock, &out);
  for (size_t q = 0; q < windows.size(); ++q) {
    const auto oracle = Sorted(fixture.tree_r.WindowQuery(windows[q]));
    const auto got = Sorted(out.ids[q]);
    if (out.complete[q]) {
      EXPECT_EQ(got, oracle);
    } else {
      // Partial: a strict subset, never fabricated ids.
      EXPECT_LT(got.size(), oracle.size());
      EXPECT_TRUE(std::includes(oracle.begin(), oracle.end(), got.begin(),
                                got.end()));
    }
  }
  EXPECT_FALSE(out.complete[0]) << "1 µs deadline must expire mid-descent";
  EXPECT_TRUE(out.complete[7]);
}

TEST(BatchDescentTest, RegionJoinDeadlineExpiresImmediately) {
  const ServeFixture fixture(500, 500, 28);
  RegionJoinOutput out;
  RegionJoinQuery(fixture.tree_r, fixture.tree_s, Rect(0.0, 0.0, 1.0, 1.0),
                  /*deadline_micros=*/5, [] { return int64_t{100}; }, &out);
  EXPECT_FALSE(out.complete);
  EXPECT_TRUE(out.pairs.empty());
}

// ---- The service: admission, backpressure, lifecycle ----

ServiceConfig UnbatchedConfig() {
  ServiceConfig config;
  config.batching = false;
  return config;
}

TEST(ServiceTest, ExecuteMatchesSingleQueryOracles) {
  const ServeFixture fixture(800, 700, 31);
  SpatialQueryService service(&fixture.tree_r, &fixture.tree_s,
                              ServiceConfig());
  service.Start();

  const Rect window(0.3, 0.3, 0.5, 0.5);
  const QueryResult window_result =
      service.Execute(QueryDescriptor::Window(window, TreeTarget::kTreeS));
  EXPECT_EQ(window_result.status, QueryStatus::kOk);
  EXPECT_EQ(Sorted(window_result.ids),
            Sorted(fixture.tree_s.WindowQuery(window)));

  const Point probe{0.44, 0.41};
  const QueryResult point_result =
      service.Execute(QueryDescriptor::PointProbe(probe));
  EXPECT_EQ(Sorted(point_result.ids),
            Sorted(fixture.tree_r.WindowQuery(
                Rect(probe.x, probe.y, probe.x, probe.y))));

  const QueryResult knn_result =
      service.Execute(QueryDescriptor::Knn(probe, 7));
  const auto knn_oracle = fixture.tree_r.KnnQuery(probe, 7);
  ASSERT_EQ(knn_result.neighbors.size(), knn_oracle.size());
  for (size_t i = 0; i < knn_oracle.size(); ++i) {
    EXPECT_EQ(knn_result.neighbors[i].object_id, knn_oracle[i].object_id);
    EXPECT_EQ(knn_result.neighbors[i].distance, knn_oracle[i].distance);
  }

  const Rect region(0.35, 0.35, 0.6, 0.6);
  const QueryResult join_result =
      service.Execute(QueryDescriptor::JoinRegion(region));
  EXPECT_EQ(AsSet(join_result.pairs), RegionOracle(fixture, region));
}

TEST(ServiceTest, BatchedAndSingleModesAgree) {
  const ServeFixture fixture(700, 600, 32);
  const std::vector<Rect> windows = fixture.MixedWindows();

  auto run = [&](const ServiceConfig& config) {
    SpatialQueryService service(&fixture.tree_r, &fixture.tree_s, config);
    std::vector<QueryResult> results(windows.size());
    std::atomic<int> done{0};
    for (size_t q = 0; q < windows.size(); ++q) {
      // Submit before Start so one admission cycle sees the whole set.
      const Submission submission = service.Submit(
          QueryDescriptor::Window(windows[q]),
          [&results, &done, q](QueryResult result) {
            results[q] = std::move(result);
            done.fetch_add(1);
          });
      EXPECT_TRUE(submission.accepted);
    }
    service.Start();
    service.Stop();  // Drains: every callback has fired after Stop.
    EXPECT_EQ(done.load(), static_cast<int>(windows.size()));
    return results;
  };

  const auto batched = run(ServiceConfig());
  const auto single = run(UnbatchedConfig());
  for (size_t q = 0; q < windows.size(); ++q) {
    EXPECT_EQ(Sorted(batched[q].ids), Sorted(single[q].ids));
    EXPECT_EQ(Sorted(batched[q].ids),
              Sorted(fixture.tree_r.WindowQuery(windows[q])));
  }
}

TEST(ServiceTest, QueueFullRejectsWithReason) {
  const ServeFixture fixture(200, 200, 33);
  ServiceConfig config;
  config.queue_capacity = 2;
  SpatialQueryService service(&fixture.tree_r, &fixture.tree_s, config);
  // Not started: submissions queue deterministically until capacity.
  std::atomic<int> callbacks{0};
  const auto callback = [&callbacks](QueryResult) {
    callbacks.fetch_add(1);
  };
  const Rect window(0.2, 0.2, 0.4, 0.4);
  EXPECT_TRUE(
      service.Submit(QueryDescriptor::Window(window), callback).accepted);
  EXPECT_TRUE(
      service.Submit(QueryDescriptor::Window(window), callback).accepted);
  const Submission third =
      service.Submit(QueryDescriptor::Window(window), callback);
  EXPECT_FALSE(third.accepted);
  EXPECT_EQ(third.reason, RejectReason::kQueueFull);

  service.Start();
  service.Stop();
  EXPECT_EQ(callbacks.load(), 2) << "exactly one callback per accepted query";
  const auto stats = service.Stats();
  EXPECT_EQ(stats.rejected_queue_full, 1);
  EXPECT_EQ(stats.accepted, 2);
  EXPECT_EQ(stats.completed_ok, 2);
}

TEST(ServiceTest, StoppedAndInvalidRejections) {
  const ServeFixture fixture(200, 200, 34);
  SpatialQueryService service(&fixture.tree_r, &fixture.tree_s,
                              ServiceConfig());
  service.Start();

  // Malformed descriptors never enter the queue.
  QueryDescriptor bad_window;
  bad_window.rect = Rect::Empty();
  EXPECT_EQ(service.Submit(bad_window, nullptr).reason,
            RejectReason::kInvalid);
  QueryDescriptor bad_knn = QueryDescriptor::Knn(Point{0.5, 0.5}, 0);
  EXPECT_EQ(service.Submit(bad_knn, nullptr).reason, RejectReason::kInvalid);

  service.Stop();
  const Submission after_stop = service.Submit(
      QueryDescriptor::Window(Rect(0.1, 0.1, 0.2, 0.2)), nullptr);
  EXPECT_FALSE(after_stop.accepted);
  EXPECT_EQ(after_stop.reason, RejectReason::kStopped);
  const auto stats = service.Stats();
  EXPECT_EQ(stats.rejected_invalid, 2);
  EXPECT_EQ(stats.rejected_stopped, 1);
}

TEST(ServiceTest, ZeroDeadlineExpiresAtFirstCheck) {
  const ServeFixture fixture(400, 400, 35);
  SpatialQueryService service(&fixture.tree_r, &fixture.tree_s,
                              ServiceConfig());
  service.Start();
  QueryDescriptor query = QueryDescriptor::Window(fixture.tree_r.root_mbr());
  query.deadline_micros = 0;
  const QueryResult result = service.Execute(query);
  EXPECT_EQ(result.status, QueryStatus::kDeadlineExceeded);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.ids.empty()) << "expired before the first node scan";

  QueryDescriptor knn = QueryDescriptor::Knn(Point{0.5, 0.5}, 3);
  knn.deadline_micros = 0;
  const QueryResult knn_result = service.Execute(knn);
  EXPECT_EQ(knn_result.status, QueryStatus::kDeadlineExceeded);
  EXPECT_TRUE(knn_result.neighbors.empty());
  EXPECT_GE(service.Stats().deadline_exceeded, 2);
}

TEST(ServiceTest, FakeClockMakesDeadlinesDeterministic) {
  const ServeFixture fixture(400, 400, 36);
  // now == 1000 forever: a 1 µs budget never expires (deadline 1001 > now),
  // a 0 µs budget always does (deadline 1000 <= now).
  ServiceConfig config;
  config.now_micros = [] { return int64_t{1000}; };
  SpatialQueryService service(&fixture.tree_r, &fixture.tree_s, config);
  service.Start();

  QueryDescriptor survives = QueryDescriptor::Window(Rect(0.3, 0.3, 0.4, 0.4));
  survives.deadline_micros = 1;
  EXPECT_EQ(service.Execute(survives).status, QueryStatus::kOk);

  QueryDescriptor expires = survives;
  expires.deadline_micros = 0;
  EXPECT_EQ(service.Execute(expires).status,
            QueryStatus::kDeadlineExceeded);
}

TEST(ServiceTest, ConcurrentSubmissionDrainsCompletely) {
  const ServeFixture fixture(600, 500, 37);
  ServiceConfig config;
  config.num_threads = 2;
  config.batch_window_micros = 50;
  SpatialQueryService service(&fixture.tree_r, &fixture.tree_s, config);
  service.Start();

  const std::vector<Rect> windows = fixture.MixedWindows();
  std::atomic<int> callbacks{0};
  int accepted = 0;
  for (int round = 0; round < 20; ++round) {
    for (const Rect& window : windows) {
      const TreeTarget target =
          round % 2 == 0 ? TreeTarget::kTreeR : TreeTarget::kTreeS;
      if (service
              .Submit(QueryDescriptor::Window(window, target),
                      [&callbacks](QueryResult) { callbacks.fetch_add(1); })
              .accepted) {
        ++accepted;
      }
    }
  }
  service.Stop();
  EXPECT_EQ(callbacks.load(), accepted);
  const auto stats = service.Stats();
  EXPECT_EQ(stats.completed_ok, accepted);
  EXPECT_EQ(stats.latency_us.total_count(), accepted);
  EXPECT_GT(stats.batches_executed, 0);
}

TEST(ServiceTest, StatsCountBatchedQueries) {
  const ServeFixture fixture(500, 400, 38);
  ServiceConfig config;
  config.now_micros = [] { return int64_t{0}; };  // Skip the batch window.
  SpatialQueryService service(&fixture.tree_r, &fixture.tree_s, config);
  const std::vector<Rect> windows = fixture.MixedWindows();
  std::atomic<int> callbacks{0};
  for (const Rect& window : windows) {
    ASSERT_TRUE(service
                    .Submit(QueryDescriptor::Window(window),
                            [&callbacks](QueryResult result) {
                              EXPECT_GT(result.batch_size, 1);
                              callbacks.fetch_add(1);
                            })
                    .accepted);
  }
  service.Start();  // One worker takes the whole pre-queued set as a batch.
  service.Stop();
  EXPECT_EQ(callbacks.load(), static_cast<int>(windows.size()));
  const auto stats = service.Stats();
  EXPECT_EQ(stats.batched_queries, static_cast<int64_t>(windows.size()));
  EXPECT_GT(stats.AvgBatchSize(), 1.0);
  EXPECT_GT(stats.descent.nodes_visited, 0);
}

// ---- The open-loop generator (smoke: real clock, tiny run) ----

TEST(LoadGenTest, SmokeRunVerifiesAgainstOracle) {
  const ServeFixture fixture(500, 400, 39);
  LoadGenOptions options;
  options.offered_qps = 500.0;
  options.duration_micros = 100'000;
  options.verify_every = 3;
  options.seed = 7;
  const auto result =
      RunOpenLoopLoad(fixture.tree_r, fixture.tree_s, options);
  EXPECT_GT(result.completed_ok, 0);
  EXPECT_GT(result.verified_queries, 0);
  EXPECT_EQ(result.verify_failures, 0);
  EXPECT_EQ(result.completed_ok + result.deadline_exceeded, result.accepted);
}

}  // namespace
}  // namespace psj

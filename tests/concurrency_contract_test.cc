// Concurrency-contract suite (DESIGN.md §14).
//
// 1. The sealed-state phase contract: PSJ_DCHECK_PHASE must abort any
//    structural mutation of a Seal()ed RStarTree until Thaw() — death
//    tests, active whenever PSJ_DCHECK is compiled in (debug builds and
//    any -DPSJ_ENABLE_DCHECKS=ON preset), skipped otherwise.
// 2. The annotated util::Mutex/MutexLock/CondVar wrappers are pure
//    forwarders: wrapping every host-threaded subsystem's locks must not
//    change a single bit of any result. Five repeated runs of the
//    deterministic native join and of the serving layer's Execute path
//    must be bit-identical.
#include <gtest/gtest.h>

#include <vector>

#include "data/generator.h"
#include "data/map_builder.h"
#include "native/native_join.h"
#include "rtree/rstar_tree.h"
#include "serve/query.h"
#include "serve/service.h"
#include "util/check.h"

namespace psj {
namespace {

RStarTree BuildSmallTree(uint32_t id, uint64_t seed, int count = 300) {
  return BuildTreeFromObjects(id, GenerateUniformSegments(seed, count, 0.02));
}

#if PSJ_DCHECK_IS_ON

using PhaseDeathTest = ::testing::Test;

TEST(PhaseDeathTest, InsertOnSealedTreeAborts) {
  RStarTree tree = BuildSmallTree(1, 11);
  ASSERT_NE(tree.soa(), nullptr);  // BuildTreeFromObjects seals.
  ASSERT_EQ(tree.phase(), RStarTree::TreePhase::kSealed);
  EXPECT_DEATH(tree.Insert(Rect(0.1, 0.1, 0.2, 0.2), 9999),
               "sealed tree");  // psj-lint: phase-ok(death test asserts the abort)
}

TEST(PhaseDeathTest, DeleteOnSealedTreeAborts) {
  const std::vector<MapObject> objects = GenerateUniformSegments(12, 300, 0.02);
  RStarTree tree = BuildTreeFromObjects(1, objects);
  const Rect victim = objects[0].Mbr();
  EXPECT_DEATH(tree.Delete(victim, 0),
               "sealed tree");  // psj-lint: phase-ok(death test asserts the abort)
}

TEST(PhaseDeathTest, ThawReenablesMutation) {
  RStarTree tree = BuildSmallTree(1, 13);
  ASSERT_EQ(tree.phase(), RStarTree::TreePhase::kSealed);
  tree.Thaw();
  ASSERT_EQ(tree.phase(), RStarTree::TreePhase::kMutable);
  tree.Insert(Rect(0.1, 0.1, 0.2, 0.2), 9999);  // Must not abort.
  EXPECT_EQ(tree.soa(), nullptr);               // Mutation dropped the cache.
  tree.Seal();
  EXPECT_NE(tree.soa(), nullptr);
  EXPECT_EQ(tree.phase(), RStarTree::TreePhase::kSealed);
}

#else

TEST(PhaseDeathTest, SkippedWithoutDchecks) {
  GTEST_SKIP() << "PSJ_DCHECK compiled out (NDEBUG without "
                  "PSJ_ENABLE_DCHECKS); the phase contract is enforced in "
                  "debug, sanitizer, and analyze builds";
}

#endif  // PSJ_DCHECK_IS_ON

// Five runs of the deterministic native join must return bit-identical
// candidate vectors: the annotated mutex wrappers (work pool, service) and
// the memory-order tightenings must not perturb any result.
TEST(WrapperIdentityTest, DeterministicNativeJoinIsBitIdenticalAcrossRuns) {
  const RStarTree tree_r =
      BuildTreeFromObjects(1, GenerateUniformSegments(21, 1500, 0.01));
  const RStarTree tree_s =
      BuildTreeFromObjects(2, GenerateUniformSegments(22, 1500, 0.02));
  native::NativeJoinConfig config;
  config.num_threads = 4;
  config.deterministic = true;
  const native::NativeJoinResult first =
      native::NativeRTreeJoin(tree_r, tree_s, config);
  ASSERT_FALSE(first.candidates.empty());
  for (int run = 1; run < 5; ++run) {
    const native::NativeJoinResult again =
        native::NativeRTreeJoin(tree_r, tree_s, config);
    ASSERT_EQ(first.candidates, again.candidates) << "run " << run;
  }
}

// Same contract through the serving layer: repeated window queries against
// an idle service return identical id vectors (worker pool, admission
// queue, and condition-variable handoffs all behind util::Mutex).
TEST(WrapperIdentityTest, ServiceExecuteIsBitIdenticalAcrossRuns) {
  const RStarTree tree_r = BuildSmallTree(1, 31, 800);
  const RStarTree tree_s = BuildSmallTree(2, 32, 800);
  serve::ServiceConfig config;
  config.num_threads = 2;
  serve::SpatialQueryService service(&tree_r, &tree_s, config);
  service.Start();
  const serve::QueryDescriptor window = serve::QueryDescriptor::Window(
      Rect(0.2, 0.2, 0.7, 0.7), serve::TreeTarget::kTreeR);
  const serve::QueryResult first = service.Execute(window);
  ASSERT_EQ(first.status, serve::QueryStatus::kOk);
  ASSERT_FALSE(first.ids.empty());
  for (int run = 1; run < 5; ++run) {
    const serve::QueryResult again = service.Execute(window);
    ASSERT_EQ(first.ids, again.ids) << "run " << run;
    ASSERT_EQ(again.status, serve::QueryStatus::kOk);
  }
  service.Stop();
}

}  // namespace
}  // namespace psj

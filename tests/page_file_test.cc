#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storage/page_file.h"
#include "util/rng.h"

namespace psj {
namespace {

PageData RandomPage(Rng& rng) {
  PageData page;
  for (auto& byte : page) {
    byte = static_cast<std::byte>(rng.NextBelow(256));
  }
  return page;
}

TEST(PageFilePersistenceTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/psj_pagefile_test.pf";
  Rng rng(1);
  PageFile file(7);
  for (int i = 0; i < 20; ++i) {
    file.AllocatePage();
    file.WritePage(static_cast<uint32_t>(i), RandomPage(rng));
  }
  ASSERT_TRUE(file.SaveToFile(path).ok());

  auto loaded = PageFile::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->file_id(), 7u);
  ASSERT_EQ(loaded->num_pages(), 20u);
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(loaded->ReadPage(i), file.ReadPage(i)) << "page " << i;
  }
  std::remove(path.c_str());
}

TEST(PageFilePersistenceTest, EmptyFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/psj_pagefile_empty.pf";
  PageFile file(3);
  ASSERT_TRUE(file.SaveToFile(path).ok());
  auto loaded = PageFile::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_pages(), 0u);
  EXPECT_EQ(loaded->file_id(), 3u);
  std::remove(path.c_str());
}

TEST(PageFilePersistenceTest, MissingFileIsNotFound) {
  EXPECT_TRUE(
      PageFile::LoadFromFile("/nonexistent/psj.pf").status().IsNotFound());
}

TEST(PageFilePersistenceTest, GarbageFileIsCorruption) {
  const std::string path = ::testing::TempDir() + "/psj_pagefile_bad.pf";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "not a page file";
  std::fwrite(junk, sizeof(junk), 1, f);
  std::fclose(f);
  EXPECT_TRUE(PageFile::LoadFromFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(PageFilePersistenceTest, TruncatedFileIsCorruption) {
  const std::string path = ::testing::TempDir() + "/psj_pagefile_trunc.pf";
  Rng rng(2);
  PageFile file(1);
  for (int i = 0; i < 5; ++i) {
    file.AllocatePage();
    file.WritePage(static_cast<uint32_t>(i), RandomPage(rng));
  }
  ASSERT_TRUE(file.SaveToFile(path).ok());
  // Chop off the last page.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 100), 0);
  EXPECT_TRUE(PageFile::LoadFromFile(path).status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace psj

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/task_pool.h"

namespace psj {
namespace {

PageTask T(uint32_t page, int level) {
  return PageTask{page, static_cast<int16_t>(level)};
}

std::vector<PageTask> Tasks(int count, int level) {
  std::vector<PageTask> tasks;
  for (int i = 0; i < count; ++i) {
    tasks.push_back(T(static_cast<uint32_t>(i + 1), level));
  }
  return tasks;
}

// Drives a TaskPool from simulated processes and records who executed
// which task.
struct PoolHarness {
  CostModel costs;
  TaskPool<PageTask> pool;
  sim::Scheduler scheduler;
  std::vector<std::vector<uint32_t>> executed;

  PoolHarness(int processors, int levels)
      : pool(processors, levels, costs, /*seed=*/1),
        executed(static_cast<size_t>(processors)) {}

  // Every processor drains the pool; item execution costs `item_cost`
  // virtual time. Optionally steals when idle.
  void Run(sim::SimTime item_cost, bool steal,
           ReassignmentLevel level = ReassignmentLevel::kAllLevels) {
    for (int i = 0; i < pool.num_processors(); ++i) {
      scheduler.Spawn([this, item_cost, steal, level](sim::Process& p) {
        for (;;) {
          auto item = pool.NextItem(p);
          if (item.has_value()) {
            p.Advance(item_cost);
            p.Sync();
            executed[static_cast<size_t>(p.id())].push_back(item->page);
            pool.FinishItem(p.id());
            continue;
          }
          p.Sync();
          if (pool.GlobalDone()) {
            return;
          }
          if (steal) {
            pool.TryStealWork(p, level, VictimPolicy::kMostLoaded);
          } else {
            p.WaitUntil(p.now() + costs.idle_poll_interval);
          }
        }
      });
    }
    scheduler.Run();
  }

  size_t TotalExecuted() const {
    size_t total = 0;
    for (const auto& items : executed) {
      total += items.size();
    }
    return total;
  }
};

TEST(TaskPoolTest, StaticRangeAssignsContiguousBlocks) {
  PoolHarness harness(3, 2);
  harness.pool.Assign(TaskAssignment::kStaticRange, Tasks(7, 1), 1);
  harness.Run(1000, /*steal=*/false);
  // 7 tasks over 3 CPUs: 3/2/2 contiguous.
  EXPECT_EQ(harness.executed[0],
            (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(harness.executed[1], (std::vector<uint32_t>{4, 5}));
  EXPECT_EQ(harness.executed[2], (std::vector<uint32_t>{6, 7}));
}

TEST(TaskPoolTest, RoundRobinInterleaves) {
  PoolHarness harness(3, 2);
  harness.pool.Assign(TaskAssignment::kStaticRoundRobin, Tasks(7, 1), 1);
  harness.Run(1000, /*steal=*/false);
  EXPECT_EQ(harness.executed[0], (std::vector<uint32_t>{1, 4, 7}));
  EXPECT_EQ(harness.executed[1], (std::vector<uint32_t>{2, 5}));
  EXPECT_EQ(harness.executed[2], (std::vector<uint32_t>{3, 6}));
}

TEST(TaskPoolTest, DynamicQueueServesEveryTaskExactlyOnce) {
  PoolHarness harness(4, 2);
  harness.pool.Assign(TaskAssignment::kDynamic, Tasks(50, 1), 1);
  harness.Run(1000, /*steal=*/false);
  EXPECT_EQ(harness.TotalExecuted(), 50u);
  std::set<uint32_t> all;
  for (const auto& items : harness.executed) {
    all.insert(items.begin(), items.end());
  }
  EXPECT_EQ(all.size(), 50u);
  // Dynamic pulls balance an even workload: everyone works.
  for (const auto& items : harness.executed) {
    EXPECT_GT(items.size(), 5u);
  }
}

TEST(TaskPoolTest, StealingRebalancesSkewedStaticAssignment) {
  // All work lands on processor 0 (range assignment of 1 huge block when
  // m < n would still spread; instead push directly).
  PoolHarness harness(4, 2);
  harness.pool.Assign(TaskAssignment::kStaticRange, Tasks(0, 1), 1);
  harness.pool.Push(0, Tasks(40, 1));
  harness.Run(5'000, /*steal=*/true);
  EXPECT_EQ(harness.TotalExecuted(), 40u);
  // The idle processors stole a substantial share.
  size_t stolen_work = 0;
  for (int cpu = 1; cpu < 4; ++cpu) {
    stolen_work += harness.executed[static_cast<size_t>(cpu)].size();
  }
  EXPECT_GT(stolen_work, 10u);
  EXPECT_GT(harness.pool.counters(1).items_stolen +
                harness.pool.counters(2).items_stolen +
                harness.pool.counters(3).items_stolen,
            0);
  EXPECT_GT(harness.pool.counters(0).items_given, 0);
}

TEST(TaskPoolTest, RootLevelStealIgnoresDeeperWork) {
  PoolHarness harness(2, 3);
  harness.pool.Assign(TaskAssignment::kStaticRange, Tasks(0, 2), 2);
  // Processor 0 has only level-0 (deep) work; root-level reassignment may
  // not move it.
  harness.pool.Push(0, Tasks(20, 0));
  harness.Run(5'000, /*steal=*/true, ReassignmentLevel::kRootLevel);
  EXPECT_EQ(harness.TotalExecuted(), 20u);
  EXPECT_EQ(harness.executed[1].size(), 0u);
  EXPECT_EQ(harness.pool.counters(1).items_stolen, 0);
}

TEST(TaskPoolTest, BuddyIsPreferredOverMostLoaded) {
  // After a first reassignment pairs processors 0 and 1, processor 1 keeps
  // helping its buddy 0 even though processor 2 reports more work —
  // until the buddy is empty (§3.4).
  CostModel costs;
  TaskPool<PageTask> pool(3, 2, costs, 1);
  pool.Assign(TaskAssignment::kStaticRange, Tasks(0, 1), 1);
  sim::Scheduler scheduler;
  scheduler.Spawn([&](sim::Process& p) {  // Processor 0: idle victim-to-be.
    p.WaitUntil(1'000'000);
  });
  scheduler.Spawn([&](sim::Process& p) {  // Processor 1: the thief.
    // Give 0 a little work and 2 a lot.
    pool.Push(0, Tasks(4, 1));
    pool.Push(2, Tasks(30, 1));
    p.Sync();
    // First steal: most-loaded picks 2 (no buddy yet).
    ASSERT_TRUE(pool.TryStealWork(p, ReassignmentLevel::kAllLevels,
                                  VictimPolicy::kMostLoaded));
    const int64_t stolen_first = pool.counters(1).items_stolen;
    EXPECT_EQ(stolen_first, 15);  // Half of 30 from processor 2.
    // Drain what was stolen so the next steal is needed.
    while (pool.NextItem(p).has_value()) {
      pool.FinishItem(p.id());
    }
    // Second steal: the buddy (processor 2) still has work and must be
    // chosen again even though its report may no longer be the largest.
    ASSERT_TRUE(pool.TryStealWork(p, ReassignmentLevel::kAllLevels,
                                  VictimPolicy::kMostLoaded));
    EXPECT_GT(pool.counters(2).items_given, 15);
    EXPECT_EQ(pool.counters(0).items_given, 0);
    while (pool.NextItem(p).has_value()) {
      pool.FinishItem(p.id());
    }
  });
  scheduler.Spawn([&](sim::Process& p) {  // Processor 2: asleep, loaded.
    p.WaitUntil(1'000'000);
    while (pool.NextItem(p).has_value()) {
      pool.FinishItem(p.id());
    }
  });
  scheduler.Run();
}

TEST(TaskPoolTest, GlobalDoneRequiresIdleProcessors) {
  CostModel costs;
  TaskPool<PageTask> pool(2, 2, costs, 1);
  pool.Assign(TaskAssignment::kDynamic, Tasks(1, 1), 1);
  EXPECT_FALSE(pool.GlobalDone());  // Queued task.
  sim::Scheduler scheduler;
  scheduler.Spawn([&](sim::Process& p) {
    auto item = pool.NextItem(p);
    ASSERT_TRUE(item.has_value());
    EXPECT_FALSE(pool.GlobalDone());  // Working processor.
    pool.FinishItem(p.id());
    EXPECT_TRUE(pool.GlobalDone());
  });
  scheduler.Spawn([&](sim::Process&) {});
  scheduler.Run();
}

}  // namespace
}  // namespace psj

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/placement.h"
#include "storage/disk_array.h"
#include "data/generator.h"
#include "data/map_builder.h"

namespace psj {
namespace {

RStarTree MakeTree(int num_objects) {
  return BuildTreeFromObjects(
      1, GenerateUniformSegments(5, num_objects, 0.01));
}

TEST(HilbertStripingTest, CoversEveryLivePageExactlyOnce) {
  const RStarTree tree = MakeTree(3'000);
  const auto placement =
      ComputeHilbertStriping(tree, tree.root_mbr(), 4);
  size_t live_pages = 0;
  for (uint32_t p = 1; p < tree.num_pages(); ++p) {
    if (!tree.IsFreePage(p)) {
      ++live_pages;
      EXPECT_EQ(placement.count(PageId{tree.tree_id(), p}), 1u)
          << "page " << p;
    }
  }
  EXPECT_EQ(placement.size(), live_pages);
}

TEST(HilbertStripingTest, BalancedAcrossDisks) {
  const RStarTree tree = MakeTree(5'000);
  const int disks = 8;
  const auto placement =
      ComputeHilbertStriping(tree, tree.root_mbr(), disks);
  std::vector<int> counts(disks, 0);
  for (const auto& [page, disk] : placement) {
    ASSERT_GE(disk, 0);
    ASSERT_LT(disk, disks);
    ++counts[static_cast<size_t>(disk)];
  }
  // Striping keeps the load within 1 page of perfectly even.
  const int min = *std::min_element(counts.begin(), counts.end());
  const int max = *std::max_element(counts.begin(), counts.end());
  EXPECT_LE(max - min, 1);
}

TEST(HilbertStripingTest, SpatialNeighborsLandOnDifferentDisks) {
  // For pages whose MBR centers are close, striping should usually assign
  // different disks (that is its purpose). Sample leaf pages of the same
  // parent: consecutive in curve order more often than not.
  const RStarTree tree = MakeTree(5'000);
  const int disks = 8;
  const auto placement =
      ComputeHilbertStriping(tree, tree.root_mbr(), disks);
  int same_disk = 0;
  int pairs = 0;
  for (uint32_t p = 1; p < tree.num_pages(); ++p) {
    if (tree.IsFreePage(p)) continue;
    const RTreeNode& node = tree.node(p);
    if (node.is_leaf() || node.entries.size() < 2) continue;
    for (size_t e = 1; e < node.entries.size(); ++e) {
      const int d0 = placement.at(
          PageId{tree.tree_id(), node.entries[e - 1].child_page()});
      const int d1 = placement.at(
          PageId{tree.tree_id(), node.entries[e].child_page()});
      same_disk += d0 == d1 ? 1 : 0;
      ++pairs;
    }
  }
  ASSERT_GT(pairs, 50);
  // Random placement would collide ~1/8 of the time; striping must not be
  // much worse than random and should be visibly better than half.
  EXPECT_LT(static_cast<double>(same_disk) / pairs, 0.3);
}

TEST(HilbertStripingTest, DiskArrayHonorsExplicitPlacement) {
  const RStarTree tree = MakeTree(1'000);
  DiskArrayModel disks(4, DiskParameters());
  auto placement = ComputeHilbertStriping(tree, tree.root_mbr(), 4);
  const auto copy = placement;
  disks.SetExplicitPlacement(std::move(placement));
  for (const auto& [page, disk] : copy) {
    EXPECT_EQ(disks.DiskOf(page), disk);
  }
  // Unlisted pages (other file id) fall back to modulo.
  EXPECT_EQ(disks.DiskOf(PageId{99, 5}), static_cast<int>((5 + 99) % 4));
}

}  // namespace
}  // namespace psj

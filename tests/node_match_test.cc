#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>

#include "geo/plane_sweep.h"
#include "join/node_match.h"
#include "util/rng.h"

namespace psj {
namespace {

using Pair = std::pair<uint32_t, uint32_t>;

RTreeNode RandomNode(Rng& rng, int level, int entries, double extent,
                     double offset = 0.0) {
  RTreeNode node;
  node.level = static_cast<int16_t>(level);
  for (int i = 0; i < entries; ++i) {
    const double x = offset + rng.NextDoubleInRange(0.0, 1.0);
    const double y = rng.NextDoubleInRange(0.0, 1.0);
    node.entries.push_back(
        RTreeEntry{Rect(x, y, x + extent, y + extent),
                   static_cast<uint64_t>(i)});
  }
  return node;
}

std::set<Pair> AsSet(const std::vector<Pair>& pairs) {
  return std::set<Pair>(pairs.begin(), pairs.end());
}

TEST(NodeMatchTest, AllFourModeCombinationsAgree) {
  Rng rng(1);
  const RTreeNode a = RandomNode(rng, 0, 26, 0.1);
  const RTreeNode b = RandomNode(rng, 0, 26, 0.1);
  std::set<Pair> reference;
  bool first = true;
  for (bool restriction : {false, true}) {
    for (bool sweep : {false, true}) {
      NodeMatchOptions options;
      options.use_search_space_restriction = restriction;
      options.use_plane_sweep = sweep;
      const auto pairs = AsSet(MatchNodeEntries(a, b, options));
      if (first) {
        reference = pairs;
        first = false;
      } else {
        EXPECT_EQ(pairs, reference)
            << "restriction=" << restriction << " sweep=" << sweep;
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(NodeMatchTest, DisjointNodesShortCircuitUnderRestriction) {
  Rng rng(2);
  const RTreeNode a = RandomNode(rng, 0, 20, 0.05, 0.0);
  const RTreeNode b = RandomNode(rng, 0, 20, 0.05, 10.0);  // Far away.
  NodeMatchCounts counts;
  const auto pairs = MatchNodeEntries(a, b, NodeMatchOptions(), &counts);
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(counts.entries_considered_r, 0u);
  EXPECT_EQ(counts.entries_considered_s, 0u);
}

TEST(NodeMatchTest, RestrictionReducesConsideredEntries) {
  Rng rng(3);
  // Two nodes with a small overlap region on the right/left edges.
  const RTreeNode a = RandomNode(rng, 1, 60, 0.02, 0.0);   // x in [0, 1].
  const RTreeNode b = RandomNode(rng, 1, 60, 0.02, 0.9);   // x in [0.9, 1.9].
  NodeMatchOptions with;
  NodeMatchCounts counts_with;
  MatchNodeEntries(a, b, with, &counts_with);
  NodeMatchOptions without;
  without.use_search_space_restriction = false;
  NodeMatchCounts counts_without;
  MatchNodeEntries(a, b, without, &counts_without);
  EXPECT_LT(counts_with.entries_considered_r,
            counts_without.entries_considered_r);
  EXPECT_EQ(counts_without.entries_considered_r, 60u);
}

TEST(NodeMatchTest, EmptyNodesYieldNothing) {
  RTreeNode a;
  a.level = 0;
  RTreeNode b;
  b.level = 0;
  EXPECT_TRUE(MatchNodeEntries(a, b).empty());
}

TEST(NodeMatchTest, SweepOutputIsInSweepOrder) {
  Rng rng(4);
  const RTreeNode a = RandomNode(rng, 0, 25, 0.2);
  const RTreeNode b = RandomNode(rng, 0, 25, 0.2);
  const auto pairs = MatchNodeEntries(a, b);
  double last_anchor = -1e300;
  for (const auto& [i, j] : pairs) {
    // The sweep anchor of a pair is the rectangle with the smaller xl.
    const double anchor =
        std::min(a.entries[i].rect.xl, b.entries[j].rect.xl);
    EXPECT_GE(anchor, last_anchor - 1e-12);
    last_anchor = std::max(last_anchor, anchor);
  }
}

TEST(NodeMatchTest, SweepCountsExactYTests) {
  // pairs_tested in plane-sweep mode must be the exact number of y-extent
  // tests of the sweep's forward scans (it used to be approximated as
  // result + |r| + |s|), computed here by replaying the scalar sweep over
  // the restricted, sorted entry sets.
  Rng rng(6);
  const RTreeNode a = RandomNode(rng, 0, 40, 0.15);
  const RTreeNode b = RandomNode(rng, 0, 40, 0.15);
  for (bool restriction : {false, true}) {
    NodeMatchOptions options;
    options.use_search_space_restriction = restriction;
    NodeMatchCounts counts;
    MatchNodeEntries(a, b, options, &counts);

    const Rect clip = a.ComputeMbr().Intersection(b.ComputeMbr());
    std::vector<Rect> rects_r;
    std::vector<Rect> rects_s;
    for (const RTreeEntry& e : a.entries) {
      if (!restriction || e.rect.Intersects(clip)) rects_r.push_back(e.rect);
    }
    for (const RTreeEntry& e : b.entries) {
      if (!restriction || e.rect.Intersects(clip)) rects_s.push_back(e.rect);
    }
    std::stable_sort(rects_r.begin(), rects_r.end(),
                     [](const Rect& x, const Rect& y) { return x.xl < y.xl; });
    std::stable_sort(rects_s.begin(), rects_s.end(),
                     [](const Rect& x, const Rect& y) { return x.xl < y.xl; });
    size_t expected_tests = 0;
    PlaneSweepJoinSortedScalar(std::span<const Rect>(rects_r),
                               std::span<const Rect>(rects_s),
                               [](size_t, size_t) {}, &expected_tests);
    EXPECT_EQ(counts.pairs_tested, expected_tests)
        << "restriction=" << restriction;
    EXPECT_GT(counts.pairs_tested, 0u);
  }
}

TEST(NodeMatchTest, NestedLoopCountsAllTests) {
  Rng rng(5);
  const RTreeNode a = RandomNode(rng, 0, 10, 0.3);
  const RTreeNode b = RandomNode(rng, 0, 12, 0.3);
  NodeMatchOptions options;
  options.use_plane_sweep = false;
  options.use_search_space_restriction = false;
  NodeMatchCounts counts;
  MatchNodeEntries(a, b, options, &counts);
  EXPECT_EQ(counts.pairs_tested, 120u);
}

}  // namespace
}  // namespace psj

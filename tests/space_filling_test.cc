#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "geo/space_filling.h"

namespace psj {
namespace {

TEST(HilbertCurveTest, Order1MatchesHandComputation) {
  const HilbertCurve curve(1);
  // The order-1 Hilbert curve visits (0,0) (0,1) (1,1) (1,0).
  EXPECT_EQ(curve.CellIndex(0, 0), 0u);
  EXPECT_EQ(curve.CellIndex(0, 1), 1u);
  EXPECT_EQ(curve.CellIndex(1, 1), 2u);
  EXPECT_EQ(curve.CellIndex(1, 0), 3u);
}

TEST(HilbertCurveTest, IsABijectionOnTheGrid) {
  const HilbertCurve curve(4);  // 16x16 grid.
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      const uint64_t index = curve.CellIndex(x, y);
      EXPECT_LT(index, 256u);
      EXPECT_TRUE(seen.insert(index).second)
          << "duplicate index " << index << " at (" << x << "," << y << ")";
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(HilbertCurveTest, ConsecutiveIndexesAreGridNeighbors) {
  const HilbertCurve curve(5);  // 32x32.
  const uint32_t size = 32;
  std::vector<std::pair<uint32_t, uint32_t>> by_index(size * size);
  for (uint32_t x = 0; x < size; ++x) {
    for (uint32_t y = 0; y < size; ++y) {
      by_index[curve.CellIndex(x, y)] = {x, y};
    }
  }
  for (size_t i = 1; i < by_index.size(); ++i) {
    const auto [x0, y0] = by_index[i - 1];
    const auto [x1, y1] = by_index[i];
    const int manhattan = std::abs(static_cast<int>(x0) -
                                   static_cast<int>(x1)) +
                          std::abs(static_cast<int>(y0) -
                                   static_cast<int>(y1));
    ASSERT_EQ(manhattan, 1) << "jump between index " << i - 1 << " and "
                            << i;
  }
}

TEST(ZOrderCurveTest, InterleavesBits) {
  const ZOrderCurve curve(3);
  EXPECT_EQ(curve.CellIndex(0, 0), 0u);
  EXPECT_EQ(curve.CellIndex(1, 0), 1u);
  EXPECT_EQ(curve.CellIndex(0, 1), 2u);
  EXPECT_EQ(curve.CellIndex(1, 1), 3u);
  EXPECT_EQ(curve.CellIndex(2, 0), 4u);
  EXPECT_EQ(curve.CellIndex(7, 7), 63u);
}

TEST(ZOrderCurveTest, IsABijectionOnTheGrid) {
  const ZOrderCurve curve(4);
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      EXPECT_TRUE(seen.insert(curve.CellIndex(x, y)).second);
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(PointIndexTest, MapsWorldCoordinatesToCells) {
  const HilbertCurve curve(8);
  const Rect world(0, 0, 1, 1);
  // Corners map to distinct cells; the same point maps consistently.
  const uint64_t a = curve.PointIndex(Point{0.01, 0.01}, world);
  const uint64_t b = curve.PointIndex(Point{0.99, 0.99}, world);
  EXPECT_NE(a, b);
  EXPECT_EQ(curve.PointIndex(Point{0.5, 0.5}, world),
            curve.PointIndex(Point{0.5, 0.5}, world));
  // Out-of-world points clamp instead of crashing.
  EXPECT_EQ(curve.PointIndex(Point{-5, -5}, world),
            curve.PointIndex(Point{0, 0}, world));
}

TEST(PointIndexTest, LocalityBeatsRandomAssignment) {
  // Nearby points land on nearby Hilbert indexes far more often than on
  // nearby Z-order indexes or random ones. Weak statistical check.
  const HilbertCurve hilbert(10);
  const Rect world(0, 0, 1, 1);
  int64_t hilbert_gap = 0;
  const int steps = 1000;
  for (int i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    const Point p0{t, 0.5};
    const Point p1{t + 0.0005, 0.5};
    hilbert_gap += std::llabs(
        static_cast<long long>(hilbert.PointIndex(p0, world)) -
        static_cast<long long>(hilbert.PointIndex(p1, world)));
  }
  // Average jump along a short horizontal walk stays small relative to the
  // 2^20-cell index space.
  EXPECT_LT(hilbert_gap / steps, 1 << 12);
}

}  // namespace
}  // namespace psj

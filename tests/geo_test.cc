#include <gtest/gtest.h>

#include "geo/polyline.h"
#include "geo/rect.h"

namespace psj {
namespace {

TEST(RectTest, BasicProperties) {
  const Rect r(1.0, 2.0, 4.0, 6.0);
  EXPECT_TRUE(r.IsValid());
  EXPECT_DOUBLE_EQ(r.Width(), 3.0);
  EXPECT_DOUBLE_EQ(r.Height(), 4.0);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  EXPECT_EQ(r.Center().x, 2.5);
  EXPECT_EQ(r.Center().y, 4.0);
}

TEST(RectTest, DegenerateRectsAreValid) {
  EXPECT_TRUE(Rect(1, 1, 1, 1).IsValid());   // Point.
  EXPECT_TRUE(Rect(1, 1, 5, 1).IsValid());   // Horizontal segment.
  EXPECT_FALSE(Rect(2, 1, 1, 1).IsValid());  // Inverted.
}

TEST(RectTest, IntersectsIsClosedOnBoundaries) {
  const Rect a(0, 0, 1, 1);
  EXPECT_TRUE(a.Intersects(Rect(1, 1, 2, 2)));  // Shared corner.
  EXPECT_TRUE(a.Intersects(Rect(1, 0, 2, 1)));  // Shared edge.
  EXPECT_FALSE(a.Intersects(Rect(1.0001, 0, 2, 1)));
  EXPECT_TRUE(a.Intersects(a));
}

TEST(RectTest, ContainsIncludesBoundary) {
  const Rect a(0, 0, 10, 10);
  EXPECT_TRUE(a.Contains(Rect(0, 0, 10, 10)));
  EXPECT_TRUE(a.Contains(Rect(2, 2, 3, 3)));
  EXPECT_FALSE(a.Contains(Rect(2, 2, 11, 3)));
  EXPECT_TRUE(a.ContainsPoint(Point{0, 10}));
  EXPECT_FALSE(a.ContainsPoint(Point{-0.1, 5}));
}

TEST(RectTest, IntersectionAndUnion) {
  const Rect a(0, 0, 4, 4);
  const Rect b(2, 1, 6, 3);
  const Rect i = a.Intersection(b);
  EXPECT_EQ(i, Rect(2, 1, 4, 3));
  EXPECT_DOUBLE_EQ(a.IntersectionArea(b), 4.0);
  EXPECT_EQ(a.UnionWith(b), Rect(0, 0, 6, 4));

  const Rect c(5, 5, 6, 6);
  EXPECT_FALSE(a.Intersection(c).IsValid());
  EXPECT_DOUBLE_EQ(a.IntersectionArea(c), 0.0);
}

TEST(RectTest, EnlargementIsUnionMinusArea) {
  const Rect a(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect(1, 1, 3, 3)), 9.0 - 4.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect(0.5, 0.5, 1, 1)), 0.0);
}

TEST(RectTest, EmptyActsAsIdentityForExpand) {
  Rect e = Rect::Empty();
  EXPECT_FALSE(e.IsValid());
  e.ExpandToInclude(Rect(1, 2, 3, 4));
  EXPECT_EQ(e, Rect(1, 2, 3, 4));
}

TEST(OverlapDegreeTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(OverlapDegree(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)), 0.0);
}

TEST(OverlapDegreeTest, ContainmentIsOne) {
  EXPECT_DOUBLE_EQ(OverlapDegree(Rect(0, 0, 10, 10), Rect(1, 1, 2, 2)), 1.0);
}

TEST(OverlapDegreeTest, PartialOverlapIsProportional) {
  // Overlap area 1, smaller rect area 4 -> 0.25.
  EXPECT_DOUBLE_EQ(OverlapDegree(Rect(0, 0, 2, 2), Rect(1, 1, 4, 4)), 0.25);
}

TEST(OverlapDegreeTest, DegenerateRectsUseExtents) {
  // A vertical segment crossing the middle of a box: x-extent of the
  // segment is a point inside the box (degree 1), y overlap is half of the
  // shorter y-extent.
  const Rect segment(1, 0, 1, 2);
  const Rect box(0, 1, 2, 3);
  EXPECT_GT(OverlapDegree(segment, box), 0.0);
  EXPECT_LE(OverlapDegree(segment, box), 1.0);
  // Two identical points that touch.
  EXPECT_DOUBLE_EQ(OverlapDegree(Rect(1, 1, 1, 1), Rect(1, 1, 1, 1)), 1.0);
}

TEST(OverlapDegreeTest, SymmetricAndBounded) {
  const Rect a(0, 0, 3, 2);
  const Rect b(1, 1, 5, 4);
  EXPECT_DOUBLE_EQ(OverlapDegree(a, b), OverlapDegree(b, a));
  EXPECT_GE(OverlapDegree(a, b), 0.0);
  EXPECT_LE(OverlapDegree(a, b), 1.0);
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
}

TEST(SegmentsIntersectTest, DisjointSegments) {
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 1}, {2, 2.0001}, {3, 3}));
}

TEST(SegmentsIntersectTest, TouchingEndpoint) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(SegmentsIntersectTest, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(SegmentsIntersectTest, TJunction) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, -1}, {1, 0}));
}

TEST(PolylineTest, MbrTracksPoints) {
  Polyline line;
  EXPECT_TRUE(line.empty());
  line.AddPoint({1, 5});
  line.AddPoint({3, 2});
  EXPECT_EQ(line.Mbr(), Rect(1, 2, 3, 5));
}

TEST(PolylineTest, LengthSumsSegments) {
  Polyline line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(line.Length(), 7.0);
}

TEST(PolylineTest, IntersectsCrossingChains) {
  Polyline a({{0, 0}, {2, 2}});
  Polyline b({{0, 2}, {2, 0}});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
}

TEST(PolylineTest, DisjointChains) {
  Polyline a({{0, 0}, {1, 0}});
  Polyline b({{0, 1}, {1, 1}});
  EXPECT_FALSE(a.Intersects(b));
}

TEST(PolylineTest, MbrOverlapButNoIntersection) {
  // L-shaped chains whose MBRs overlap but segments never touch.
  Polyline a({{0, 0}, {0, 3}, {3, 3}});
  Polyline b({{1, 1}, {2, 1}, {2, 2}});
  EXPECT_FALSE(a.Intersects(b));
}

TEST(PolylineTest, SinglePointOnSegment) {
  Polyline point({{1, 1}});
  Polyline segment({{0, 0}, {2, 2}});
  EXPECT_TRUE(point.Intersects(segment));
  EXPECT_TRUE(segment.Intersects(point));
  Polyline off({{5, 5}});
  EXPECT_FALSE(off.Intersects(segment));
}

TEST(SegmentIntersectsRectTest, EndpointInside) {
  EXPECT_TRUE(SegmentIntersectsRect({1, 1}, {5, 5}, Rect(0, 0, 2, 2)));
}

TEST(SegmentIntersectsRectTest, CrossesThrough) {
  // Both endpoints outside, segment passes through the box.
  EXPECT_TRUE(SegmentIntersectsRect({-1, 1}, {3, 1}, Rect(0, 0, 2, 2)));
  // Diagonal pass through a corner region.
  EXPECT_TRUE(SegmentIntersectsRect({-1, 1}, {1, 3}, Rect(0, 0, 2, 2)));
}

TEST(SegmentIntersectsRectTest, MissesBox) {
  EXPECT_FALSE(SegmentIntersectsRect({-1, 3}, {3, 7}, Rect(0, 0, 2, 2)));
  EXPECT_FALSE(SegmentIntersectsRect({5, 5}, {6, 6}, Rect(0, 0, 2, 2)));
}

TEST(SegmentIntersectsRectTest, TouchesEdge) {
  EXPECT_TRUE(SegmentIntersectsRect({-1, 2}, {3, 2}, Rect(0, 0, 2, 2)));
  EXPECT_TRUE(SegmentIntersectsRect({2, -1}, {2, 3}, Rect(0, 0, 2, 2)));
}

TEST(PolylineIntersectsRectTest, MbrOverlapButGeometryOutside) {
  // L-shaped chain whose MBR contains the box but whose segments miss it.
  Polyline line({{0, 0}, {0, 10}, {10, 10}});
  EXPECT_FALSE(line.IntersectsRect(Rect(4, 4, 6, 6)));
  EXPECT_TRUE(line.IntersectsRect(Rect(-1, 3, 1, 5)));
}

TEST(PolylineIntersectsRectTest, FullyInside) {
  Polyline line({{1, 1}, {1.5, 1.5}});
  EXPECT_TRUE(line.IntersectsRect(Rect(0, 0, 2, 2)));
}

TEST(PolylineIntersectsRectTest, SinglePoint) {
  EXPECT_TRUE(Polyline({{1, 1}}).IntersectsRect(Rect(0, 0, 2, 2)));
  EXPECT_FALSE(Polyline({{5, 5}}).IntersectsRect(Rect(0, 0, 2, 2)));
  EXPECT_FALSE(Polyline().IntersectsRect(Rect(0, 0, 2, 2)));
}

TEST(PolylineTest, EmptyNeverIntersects) {
  Polyline empty;
  Polyline segment({{0, 0}, {1, 1}});
  EXPECT_FALSE(empty.Intersects(segment));
  EXPECT_FALSE(segment.Intersects(empty));
  EXPECT_FALSE(empty.Intersects(empty));
}

}  // namespace
}  // namespace psj

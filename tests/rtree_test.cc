#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rtree/rstar_tree.h"
#include "rtree/validator.h"
#include "storage/page_file.h"
#include "util/rng.h"

namespace psj {
namespace {

// Small fanouts exercise splits and reinsertion with few entries.
RTreeOptions SmallOptions() {
  RTreeOptions options;
  options.max_dir_entries = 8;
  options.max_data_entries = 8;
  return options;
}

Rect RandomRect(Rng& rng, double extent = 0.05) {
  const double x = rng.NextDoubleInRange(0.0, 1.0);
  const double y = rng.NextDoubleInRange(0.0, 1.0);
  return Rect(x, y, x + rng.NextDoubleInRange(0.0, extent),
              y + rng.NextDoubleInRange(0.0, extent));
}

TEST(RStarTreeTest, EmptyTreeIsValid) {
  RStarTree tree(1, SmallOptions());
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.num_data_entries(), 0);
  EXPECT_TRUE(ValidateRTree(tree).ok());
  EXPECT_TRUE(tree.WindowQuery(Rect(0, 0, 1, 1)).empty());
}

TEST(RStarTreeTest, SingleInsertIsQueryable) {
  RStarTree tree(1, SmallOptions());
  tree.Insert(Rect(0.1, 0.1, 0.2, 0.2), 42);
  EXPECT_EQ(tree.num_data_entries(), 1);
  const auto hits = tree.WindowQuery(Rect(0, 0, 1, 1));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  EXPECT_TRUE(tree.WindowQuery(Rect(0.5, 0.5, 0.6, 0.6)).empty());
}

TEST(RStarTreeTest, GrowsAndStaysValid) {
  RStarTree tree(1, SmallOptions());
  Rng rng(3);
  for (uint64_t i = 0; i < 500; ++i) {
    tree.Insert(RandomRect(rng), i);
    if (i % 50 == 49) {
      ASSERT_TRUE(ValidateRTree(tree).ok()) << "after insert " << i;
    }
  }
  EXPECT_GT(tree.height(), 1);
  EXPECT_EQ(tree.num_data_entries(), 500);
  EXPECT_TRUE(ValidateRTree(tree).ok());
}

TEST(RStarTreeTest, WindowQueryMatchesLinearScan) {
  RStarTree tree(1, SmallOptions());
  Rng rng(4);
  std::vector<Rect> rects;
  for (uint64_t i = 0; i < 400; ++i) {
    rects.push_back(RandomRect(rng));
    tree.Insert(rects.back(), i);
  }
  for (int q = 0; q < 50; ++q) {
    const Rect window = RandomRect(rng, 0.4);
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < rects.size(); ++i) {
      if (rects[i].Intersects(window)) expected.insert(i);
    }
    auto hits = tree.WindowQuery(window);
    const std::set<uint64_t> actual(hits.begin(), hits.end());
    EXPECT_EQ(hits.size(), actual.size()) << "duplicate result";
    ASSERT_EQ(actual, expected) << "query " << q;
  }
}

TEST(RStarTreeTest, DeleteRemovesOnlyTargetedEntry) {
  RStarTree tree(1, SmallOptions());
  Rng rng(5);
  std::vector<Rect> rects;
  for (uint64_t i = 0; i < 200; ++i) {
    rects.push_back(RandomRect(rng));
    tree.Insert(rects.back(), i);
  }
  EXPECT_TRUE(tree.Delete(rects[77], 77));
  EXPECT_FALSE(tree.Delete(rects[77], 77));  // Already gone.
  EXPECT_EQ(tree.num_data_entries(), 199);
  EXPECT_TRUE(ValidateRTree(tree).ok());
  const auto hits = tree.WindowQuery(rects[77]);
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 77u), 0);
}

TEST(RStarTreeTest, DeleteEverythingShrinksTree) {
  RStarTree tree(1, SmallOptions());
  Rng rng(6);
  std::vector<Rect> rects;
  for (uint64_t i = 0; i < 300; ++i) {
    rects.push_back(RandomRect(rng));
    tree.Insert(rects.back(), i);
  }
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Delete(rects[i], i)) << i;
    if (i % 25 == 24) {
      ASSERT_TRUE(ValidateRTree(tree).ok()) << "after delete " << i;
    }
  }
  EXPECT_EQ(tree.num_data_entries(), 0);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(ValidateRTree(tree).ok());
}

TEST(RStarTreeTest, MixedInsertDeleteWorkloadStaysConsistent) {
  RStarTree tree(1, SmallOptions());
  Rng rng(7);
  std::vector<std::pair<Rect, uint64_t>> live;
  uint64_t next_id = 0;
  for (int step = 0; step < 1500; ++step) {
    if (live.empty() || rng.NextBool(0.6)) {
      const Rect r = RandomRect(rng);
      tree.Insert(r, next_id);
      live.emplace_back(r, next_id);
      ++next_id;
    } else {
      const size_t pick = rng.NextBelow(live.size());
      ASSERT_TRUE(tree.Delete(live[pick].first, live[pick].second));
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (step % 100 == 99) {
      ASSERT_TRUE(ValidateRTree(tree).ok()) << "step " << step;
      ASSERT_EQ(tree.num_data_entries(),
                static_cast<int64_t>(live.size()));
    }
  }
  // Every live object findable, in full.
  auto hits = tree.WindowQuery(Rect(0, 0, 2, 2));
  EXPECT_EQ(hits.size(), live.size());
}

TEST(RStarTreeTest, DuplicateRectsWithDistinctIdsSupported) {
  RStarTree tree(1, SmallOptions());
  const Rect r(0.4, 0.4, 0.5, 0.5);
  for (uint64_t i = 0; i < 30; ++i) {
    tree.Insert(r, i);
  }
  EXPECT_TRUE(ValidateRTree(tree).ok());
  EXPECT_EQ(tree.WindowQuery(r).size(), 30u);
  EXPECT_TRUE(tree.Delete(r, 17));
  EXPECT_EQ(tree.WindowQuery(r).size(), 29u);
}

TEST(RStarTreeTest, ForcedReinsertCanBeDisabled) {
  RTreeOptions options = SmallOptions();
  options.enable_forced_reinsert = false;
  RStarTree tree(1, options);
  Rng rng(8);
  for (uint64_t i = 0; i < 300; ++i) {
    tree.Insert(RandomRect(rng), i);
  }
  EXPECT_TRUE(ValidateRTree(tree).ok());
  EXPECT_EQ(tree.num_data_entries(), 300);
}

TEST(RStarTreeTest, ShapeStatsCountPages) {
  RStarTree tree(1, SmallOptions());
  Rng rng(9);
  for (uint64_t i = 0; i < 400; ++i) {
    tree.Insert(RandomRect(rng), i);
  }
  const RTreeShapeStats stats = tree.ComputeShapeStats();
  EXPECT_EQ(stats.height, tree.height());
  EXPECT_EQ(stats.num_data_entries, 400);
  EXPECT_GT(stats.num_data_pages, 400 / 8);
  EXPECT_GT(stats.num_dir_pages, 0);
  EXPECT_GT(stats.avg_data_fill, 0.4);
  EXPECT_LE(stats.avg_data_fill, 1.0);
}

TEST(RStarTreeTest, PageFileRoundTrip) {
  RStarTree tree(5, SmallOptions());
  Rng rng(10);
  std::vector<Rect> rects;
  for (uint64_t i = 0; i < 350; ++i) {
    rects.push_back(RandomRect(rng));
    tree.Insert(rects.back(), i);
  }
  // Some deletions so the file contains free pages.
  for (uint64_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(tree.Delete(rects[i], i));
  }
  PageFile file(5);
  ASSERT_TRUE(tree.PackToPageFile(&file).ok());
  EXPECT_EQ(file.num_pages(), tree.num_pages());

  auto loaded = RStarTree::LoadFromPageFile(file, SmallOptions());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(ValidateRTree(*loaded).ok());
  EXPECT_EQ(loaded->num_data_entries(), tree.num_data_entries());
  EXPECT_EQ(loaded->height(), tree.height());
  EXPECT_EQ(loaded->root_page(), tree.root_page());
  // Same query answers.
  for (int q = 0; q < 20; ++q) {
    const Rect window = RandomRect(rng, 0.3);
    auto a = tree.WindowQuery(window);
    auto b = loaded->WindowQuery(window);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
}

TEST(RStarTreeTest, PackRequiresEmptyFile) {
  RStarTree tree(1, SmallOptions());
  tree.Insert(Rect(0, 0, 1, 1), 0);
  PageFile file(1);
  file.AllocatePage();
  EXPECT_TRUE(tree.PackToPageFile(&file).IsInvalidArgument())
      << "non-empty file must be rejected";
}

TEST(RStarTreeTest, LoadRejectsGarbage) {
  PageFile file(1);
  file.AllocatePage();  // Zeroed metadata page: bad magic.
  EXPECT_TRUE(RStarTree::LoadFromPageFile(file).status().IsCorruption());
  EXPECT_TRUE(
      RStarTree::LoadFromPageFile(PageFile(1)).status().IsInvalidArgument());
}

TEST(RStarTreeTest, PaperFanoutsYieldTable1LikeShape) {
  // With default (paper) fanouts, ~13k uniform entries give height 2-3 and
  // data-page occupancy around 70%.
  RStarTree tree(1);
  Rng rng(11);
  for (uint64_t i = 0; i < 13'000; ++i) {
    tree.Insert(RandomRect(rng, 0.01), i);
  }
  EXPECT_TRUE(ValidateRTree(tree).ok());
  const auto stats = tree.ComputeShapeStats();
  EXPECT_GE(stats.height, 2);
  EXPECT_LE(stats.height, 3);
  EXPECT_GT(stats.avg_data_fill, 0.6);
  const double avg_entries_per_leaf =
      static_cast<double>(stats.num_data_entries) /
      static_cast<double>(stats.num_data_pages);
  EXPECT_GT(avg_entries_per_leaf, 15.0);
  EXPECT_LE(avg_entries_per_leaf, 26.0);
}

TEST(RStarTreeKnnTest, MatchesLinearScan) {
  RStarTree tree(1, SmallOptions());
  Rng rng(30);
  std::vector<Rect> rects;
  for (uint64_t i = 0; i < 600; ++i) {
    rects.push_back(RandomRect(rng, 0.02));
    tree.Insert(rects.back(), i);
  }
  for (int q = 0; q < 20; ++q) {
    const Point query{rng.NextDouble(), rng.NextDouble()};
    // Reference: sort all entries by (mindist, id).
    std::vector<std::pair<double, uint64_t>> reference;
    for (uint64_t i = 0; i < rects.size(); ++i) {
      reference.emplace_back(std::sqrt(MinDistSq(query, rects[i])), i);
    }
    std::sort(reference.begin(), reference.end());
    const auto neighbors = tree.KnnQuery(query, 10);
    ASSERT_EQ(neighbors.size(), 10u);
    for (size_t k = 0; k < neighbors.size(); ++k) {
      EXPECT_NEAR(neighbors[k].distance, reference[k].first, 1e-12)
          << "query " << q << " rank " << k;
    }
    // Distances ascending.
    for (size_t k = 1; k < neighbors.size(); ++k) {
      EXPECT_GE(neighbors[k].distance, neighbors[k - 1].distance);
    }
  }
}

TEST(RStarTreeKnnTest, EdgeCases) {
  RStarTree tree(1, SmallOptions());
  EXPECT_TRUE(tree.KnnQuery(Point{0.5, 0.5}, 5).empty());  // Empty tree.
  tree.Insert(Rect(0.1, 0.1, 0.2, 0.2), 7);
  EXPECT_TRUE(tree.KnnQuery(Point{0.5, 0.5}, 0).empty());  // k = 0.
  const auto one = tree.KnnQuery(Point{0.15, 0.15}, 3);
  ASSERT_EQ(one.size(), 1u);  // Fewer entries than k.
  EXPECT_EQ(one[0].object_id, 7u);
  EXPECT_DOUBLE_EQ(one[0].distance, 0.0);  // Query inside the MBR.
}

TEST(RStarTreeKnnTest, KEqualsTreeSizeReturnsAll) {
  RStarTree tree(1, SmallOptions());
  Rng rng(31);
  for (uint64_t i = 0; i < 100; ++i) {
    tree.Insert(RandomRect(rng), i);
  }
  const auto all = tree.KnnQuery(Point{0.5, 0.5}, 100);
  EXPECT_EQ(all.size(), 100u);
  std::set<uint64_t> ids;
  for (const auto& neighbor : all) {
    ids.insert(neighbor.object_id);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(RStarTreeKnnTest, PaperFanoutLargeTreeMatchesLinearScan) {
  // Same property as MatchesLinearScan, but on a multi-level tree with the
  // paper's real fanouts (102/26), where best-first pruning actually
  // skips subtrees.
  RStarTree tree(1);
  Rng rng(32);
  std::vector<Rect> rects;
  for (uint64_t i = 0; i < 3'000; ++i) {
    rects.push_back(RandomRect(rng, 0.01));
    tree.Insert(rects.back(), i);
  }
  ASSERT_GE(tree.height(), 2);
  for (int q = 0; q < 10; ++q) {
    const Point query{rng.NextDouble(), rng.NextDouble()};
    std::vector<double> reference;
    for (const Rect& r : rects) {
      reference.push_back(std::sqrt(MinDistSq(query, r)));
    }
    std::sort(reference.begin(), reference.end());
    const auto neighbors = tree.KnnQuery(query, 25);
    ASSERT_EQ(neighbors.size(), 25u);
    std::set<uint64_t> unique_ids;
    for (size_t k = 0; k < neighbors.size(); ++k) {
      EXPECT_NEAR(neighbors[k].distance, reference[k], 1e-12)
          << "query " << q << " rank " << k;
      unique_ids.insert(neighbors[k].object_id);
    }
    EXPECT_EQ(unique_ids.size(), neighbors.size());
  }
}

TEST(MinDistSqTest, InsideOnBoundaryOutside) {
  const Rect box(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(MinDistSq(Point{1, 1}, box), 0.0);
  EXPECT_DOUBLE_EQ(MinDistSq(Point{2, 1}, box), 0.0);
  EXPECT_DOUBLE_EQ(MinDistSq(Point{3, 1}, box), 1.0);
  EXPECT_DOUBLE_EQ(MinDistSq(Point{3, 3}, box), 2.0);
  EXPECT_DOUBLE_EQ(MinDistSq(Point{-1, -2}, box), 5.0);
}

class RStarTreeValiditySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RStarTreeValiditySweep, RandomWorkloadStaysValid) {
  RStarTree tree(1, SmallOptions());
  Rng rng(GetParam());
  std::vector<std::pair<Rect, uint64_t>> live;
  uint64_t next_id = 0;
  for (int step = 0; step < 600; ++step) {
    if (live.empty() || rng.NextBool(0.7)) {
      const Rect r = RandomRect(rng, rng.NextBool(0.5) ? 0.002 : 0.2);
      tree.Insert(r, next_id);
      live.emplace_back(r, next_id++);
    } else {
      const size_t pick = rng.NextBelow(live.size());
      ASSERT_TRUE(tree.Delete(live[pick].first, live[pick].second));
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  EXPECT_TRUE(ValidateRTree(tree).ok());
  EXPECT_EQ(tree.num_data_entries(), static_cast<int64_t>(live.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RStarTreeValiditySweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace psj

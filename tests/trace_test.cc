// Trace subsystem tests: sink/histogram units, the Chrome trace-event
// export schema (well-formed JSON, monotone per-track timestamps, one track
// per simulated processor), byte-identical repeated exports, and the
// timeline analyzer's accounting invariants.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "join/sequential_join.h"
#include "trace/chrome_trace.h"
#include "trace/flame.h"
#include "trace/timeline.h"
#include "trace/trace_sink.h"

namespace psj {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator (structure only): objects, arrays, strings,
// numbers, true/false/null. Returns true iff the whole input is exactly one
// well-formed value.
// ---------------------------------------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;  // Skip the escaped character blindly.
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!String()) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != '}') {
      return false;
    }
    ++pos_;
    return true;
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != ']') {
      return false;
    }
    ++pos_;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Extracts the integer value following every occurrence of `"key": ` in
// `text` — good enough for the exporter's own fixed formatting.
std::vector<int64_t> ExtractInts(const std::string& text,
                                 const std::string& key) {
  std::vector<int64_t> values;
  const std::string needle = "\"" + key + "\": ";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    if (pos < text.size() &&
        (text[pos] == '-' ||
         std::isdigit(static_cast<unsigned char>(text[pos])) != 0)) {
      values.push_back(std::strtoll(text.c_str() + pos, nullptr, 10));
    }
  }
  return values;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, PowerOfTwoBuckets) {
  trace::Histogram h;
  h.Record(0);  // Bucket 0.
  h.Record(1);  // Bucket 1: [1, 2).
  h.Record(2);  // Bucket 2: [2, 4).
  h.Record(3);  // Bucket 2.
  h.Record(4);  // Bucket 3: [4, 8).
  h.Record(7);  // Bucket 3.
  h.Record(8);  // Bucket 4: [8, 16).
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 2);
  EXPECT_EQ(h.bucket_count(3), 2);
  EXPECT_EQ(h.bucket_count(4), 1);
  EXPECT_EQ(h.total_count(), 7);
  EXPECT_EQ(h.sum(), 25);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 8);
  EXPECT_EQ(h.HighestBucket(), 4);
}

TEST(HistogramTest, BucketLowerBounds) {
  EXPECT_EQ(trace::Histogram::BucketLowerBound(0), 0);
  EXPECT_EQ(trace::Histogram::BucketLowerBound(1), 1);
  EXPECT_EQ(trace::Histogram::BucketLowerBound(2), 2);
  EXPECT_EQ(trace::Histogram::BucketLowerBound(3), 4);
  EXPECT_EQ(trace::Histogram::BucketLowerBound(10), 512);
}

TEST(HistogramTest, HugeValuesLandInTheLastBucket) {
  trace::Histogram h;
  h.Record(INT64_MAX);
  EXPECT_EQ(h.bucket_count(trace::Histogram::kNumBuckets - 1), 1);
  EXPECT_EQ(h.max(), INT64_MAX);
  EXPECT_EQ(h.HighestBucket(), trace::Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, EmptyHistogram) {
  const trace::Histogram h;
  EXPECT_EQ(h.total_count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.HighestBucket(), -1);
}

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

TEST(TraceSinkTest, RecordsSpansAndInstants) {
  trace::TraceSink sink;
  sink.Span(0, trace::Category::kTask, "task", 10, 30, 7);
  sink.Instant(1, trace::Category::kNodePair, "pair", 15, 3, 2);
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].start, 10);
  EXPECT_EQ(sink.events()[0].end, 30);
  EXPECT_EQ(sink.events()[0].arg0, 7);
  EXPECT_EQ(sink.events()[1].start, sink.events()[1].end);
}

TEST(TraceSinkTest, CountersKeepRegistrationOrder) {
  trace::TraceSink sink;
  sink.AddCounter("b", 2);
  sink.AddCounter("a", 1);
  sink.AddCounter("b", 3);
  sink.SetCounter("c", 9);
  ASSERT_EQ(sink.counters().size(), 3u);
  EXPECT_EQ(sink.counters()[0].first, "b");
  EXPECT_EQ(sink.counters()[0].second, 5);
  EXPECT_EQ(sink.counters()[1].first, "a");
  EXPECT_EQ(sink.counters()[1].second, 1);
  EXPECT_EQ(sink.counters()[2].first, "c");
  EXPECT_EQ(sink.counters()[2].second, 9);
}

TEST(TraceSinkTest, HistogramPointersAreStable) {
  trace::TraceSink sink;
  trace::Histogram* h = sink.histogram("lat");
  for (int i = 0; i < 100; ++i) {
    sink.histogram(std::to_string(i))->Record(i);
  }
  EXPECT_EQ(sink.histogram("lat"), h);
  EXPECT_EQ(sink.FindHistogram("lat"), h);
  EXPECT_EQ(sink.FindHistogram("missing"), nullptr);
}

TEST(TraceSinkTest, TrackNames) {
  trace::TraceSink sink;
  sink.SetTrackName(2, "cpu 2");
  sink.SetTrackName(trace::DiskTrack(0), "disk 0");
  EXPECT_EQ(sink.TrackName(2), "cpu 2");
  EXPECT_EQ(sink.TrackName(5), "track 5");
  const std::vector<int32_t> tracks = sink.Tracks();
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0], 2);
  EXPECT_EQ(tracks[1], trace::DiskTrack(0));
}

// ---------------------------------------------------------------------------
// Traced join runs: schema + reproducibility
// ---------------------------------------------------------------------------

const PaperWorkload& TinyWorkload() {
  static const PaperWorkload* workload = [] {
    PaperWorkloadSpec spec;
    spec = spec.Scaled(0.02);
    return new PaperWorkload(spec);
  }();
  return *workload;
}

// A Figure-7-style configuration: the gd variant with reassignment and
// fewer disks than processors so queueing, steals and remote hits all
// appear in the trace.
ParallelJoinConfig TracedConfig() {
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.num_processors = 4;
  config.num_disks = 2;
  config.total_buffer_pages = 160;
  config.reassignment = ReassignmentLevel::kAllLevels;
  config.scheduler_backend = sim::SchedulerBackend::kThread;
  return config;
}

JoinResult RunTraced(trace::TraceSink* sink) {
  ParallelJoinConfig config = TracedConfig();
  config.trace = sink;
  auto result = TinyWorkload().RunJoin(config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(ChromeTraceTest, ExportIsWellFormedJson) {
  trace::TraceSink sink;
  RunTraced(&sink);
  ASSERT_FALSE(sink.events().empty());
  const std::string json = trace::ExportChromeTrace(sink);
  EXPECT_TRUE(JsonValidator(json).Valid()) << json.substr(0, 400);
}

TEST(ChromeTraceTest, TimestampsAreMonotonePerTrack) {
  trace::TraceSink sink;
  RunTraced(&sink);
  const std::string json = trace::ExportChromeTrace(sink);
  // The exporter emits one "tid" and one "ts" per trace event, in document
  // order (metadata records carry no "ts"), so the two sequences pair up.
  const std::vector<int64_t> tids = ExtractInts(json, "tid");
  const std::vector<int64_t> ts = ExtractInts(json, "ts");
  const size_t num_meta = tids.size() - ts.size();
  ASSERT_GT(ts.size(), 0u);
  ASSERT_LE(num_meta, tids.size());
  std::map<int64_t, int64_t> last_ts;
  for (size_t i = 0; i < ts.size(); ++i) {
    const int64_t tid = tids[num_meta + i];
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_LE(it->second, ts[i]) << "track " << tid << " event " << i;
    }
    last_ts[tid] = ts[i];
  }
}

TEST(ChromeTraceTest, OneTrackPerProcessorPlusDisks) {
  trace::TraceSink sink;
  RunTraced(&sink);
  const ParallelJoinConfig config = TracedConfig();
  int processor_tracks = 0;
  int disk_tracks = 0;
  for (const int32_t track : sink.Tracks()) {
    if (track >= 0 && track < config.num_processors) {
      ++processor_tracks;
    } else if (track >= trace::kDiskTrackBase) {
      ++disk_tracks;
    }
  }
  EXPECT_EQ(processor_tracks, config.num_processors);
  EXPECT_EQ(disk_tracks, config.num_disks);
  // The export names every track via thread_name metadata.
  const std::string json = trace::ExportChromeTrace(sink);
  EXPECT_NE(json.find("\"cpu 0\""), std::string::npos);
  EXPECT_NE(json.find("\"disk 0\""), std::string::npos);
}

TEST(ChromeTraceTest, RepeatedRunsExportByteIdenticalTraces) {
  trace::TraceSink sink_a;
  trace::TraceSink sink_b;
  const JoinResult first = RunTraced(&sink_a);
  const JoinResult second = RunTraced(&sink_b);
  EXPECT_EQ(first, second);
  const std::string json_a = trace::ExportChromeTrace(sink_a);
  const std::string json_b = trace::ExportChromeTrace(sink_b);
  EXPECT_FALSE(json_a.empty());
  EXPECT_EQ(json_a, json_b);
}

TEST(ChromeTraceTest, TracingDoesNotChangeTheJoinResult) {
  trace::TraceSink sink;
  const JoinResult traced = RunTraced(&sink);
  auto untraced = TinyWorkload().RunJoin(TracedConfig());
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(traced, *untraced);
}

TEST(ChromeTraceTest, RecordsTheExpectedEventMix) {
  trace::TraceSink sink;
  const JoinResult result = RunTraced(&sink);
  int64_t tasks = 0;
  int64_t node_pairs = 0;
  int64_t disk_services = 0;
  int64_t creation = 0;
  for (const trace::TraceEvent& event : sink.events()) {
    switch (event.category) {
      case trace::Category::kTask:
        tasks += event.end > event.start ? 1 : 0;
        break;
      case trace::Category::kNodePair:
        ++node_pairs;
        break;
      case trace::Category::kDiskService:
        ++disk_services;
        break;
      case trace::Category::kTaskCreation:
        ++creation;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(creation, 1);
  int64_t expected_pairs = 0;
  for (const auto& p : result.stats.per_processor) {
    expected_pairs += p.node_pairs_processed;
  }
  EXPECT_EQ(node_pairs, expected_pairs);
  EXPECT_EQ(disk_services, result.stats.total_disk_accesses);
  EXPECT_GT(tasks, 0);
  // Every executed task landed in the duration histogram.
  const trace::Histogram* durations = sink.FindHistogram("task_duration_us");
  ASSERT_NE(durations, nullptr);
  EXPECT_EQ(durations->total_count(), tasks);
  // Disk queueing was recorded per read.
  const trace::Histogram* queue_wait =
      sink.FindHistogram("disk_queue_wait_us");
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_EQ(queue_wait->total_count(), result.stats.total_disk_accesses);
  EXPECT_EQ(queue_wait->sum(), result.stats.total_disk_wait);
}

TEST(SequentialJoinTraceTest, EmitsSyntheticTimeline) {
  trace::TraceSink sink;
  SequentialJoinOptions options;
  options.trace = &sink;
  const SequentialJoinResult result = SequentialRTreeJoin(
      TinyWorkload().tree_r(), TinyWorkload().tree_s(), options);
  EXPECT_GT(result.node_reads, 0);
  int64_t reads = 0;
  int64_t top_spans = 0;
  for (const trace::TraceEvent& event : sink.events()) {
    if (event.category == trace::Category::kBufferMiss) {
      ++reads;
    } else if (event.category == trace::Category::kTask) {
      ++top_spans;
    }
  }
  EXPECT_EQ(reads, result.node_reads);
  EXPECT_EQ(top_spans, 1);
  const std::string json = trace::ExportChromeTrace(sink);
  EXPECT_TRUE(JsonValidator(json).Valid());
}

// ---------------------------------------------------------------------------
// Timeline analyzer
// ---------------------------------------------------------------------------

TEST(TimelineTest, FractionsSumToOnePerBucket) {
  trace::TraceSink sink;
  const JoinResult result = RunTraced(&sink);
  const trace::TimelineTable table = trace::AnalyzeTimeline(
      sink, TracedConfig().num_processors, result.stats.response_time);
  ASSERT_EQ(table.per_processor.size(),
            static_cast<size_t>(TracedConfig().num_processors));
  for (const trace::TrackUtilization& row : table.per_processor) {
    ASSERT_EQ(row.busy.size(), static_cast<size_t>(table.num_buckets));
    for (size_t b = 0; b < row.busy.size(); ++b) {
      const double sum =
          row.busy[b] + row.io_wait[b] + row.steal[b] + row.idle[b];
      EXPECT_NEAR(sum, 1.0, 1e-9) << "bucket " << b;
      EXPECT_GE(row.busy[b], 0.0);
      EXPECT_GE(row.io_wait[b], 0.0);
      EXPECT_GE(row.steal[b], 0.0);
      EXPECT_GE(row.idle[b], 0.0);
    }
    EXPECT_LE(row.total_busy + row.total_io_wait + row.total_steal +
                  row.total_idle,
              table.end_time + table.bucket_width);
  }
}

TEST(TimelineTest, SyntheticSpansClassifyAsExpected) {
  trace::TraceSink sink;
  // One processor: a task from 0-100 containing a disk read 40-90, then
  // idle until 200.
  sink.Span(0, trace::Category::kTask, "task", 0, 100);
  sink.Span(0, trace::Category::kBufferMiss, "read", 40, 90);
  const trace::TimelineTable table =
      trace::AnalyzeTimeline(sink, 1, 200, /*num_buckets=*/2);
  ASSERT_EQ(table.per_processor.size(), 1u);
  const trace::TrackUtilization& row = table.per_processor[0];
  // Bucket 0 covers [0, 100): 50 us busy, 50 us I/O.
  EXPECT_NEAR(row.busy[0], 0.5, 1e-9);
  EXPECT_NEAR(row.io_wait[0], 0.5, 1e-9);
  EXPECT_NEAR(row.idle[0], 0.0, 1e-9);
  // Bucket 1 covers [100, 200): all idle.
  EXPECT_NEAR(row.idle[1], 1.0, 1e-9);
  EXPECT_EQ(row.total_busy, 50);
  EXPECT_EQ(row.total_io_wait, 50);
  EXPECT_EQ(row.total_idle, 100);
}

TEST(TimelineTest, FormatMentionsEveryProcessor) {
  trace::TraceSink sink;
  const JoinResult result = RunTraced(&sink);
  const trace::TimelineTable table = trace::AnalyzeTimeline(
      sink, TracedConfig().num_processors, result.stats.response_time);
  const std::string text = table.Format();
  for (int cpu = 0; cpu < TracedConfig().num_processors; ++cpu) {
    EXPECT_NE(text.find("cpu " + std::to_string(cpu)), std::string::npos);
  }
  EXPECT_NE(text.find("busy"), std::string::npos);
}


// ---------------------------------------------------------------------------
// Collapsed-stack (folded) flamegraph export.
// ---------------------------------------------------------------------------

TEST(FlameTest, NestedSpansGetSelfTime) {
  trace::TraceSink sink;
  sink.SetTrackName(0, "cpu 0");
  sink.Span(0, trace::Category::kTask, "task", 0, 100);
  sink.Span(0, trace::Category::kBufferMiss, "disk read", 10, 30);
  sink.Span(0, trace::Category::kRefinement, "refinement", 40, 45);
  const std::string folded = trace::ExportCollapsedStacks(sink);
  EXPECT_EQ(folded,
            "cpu 0;task 75\n"
            "cpu 0;task;disk read 20\n"
            "cpu 0;task;refinement 5\n");
}

TEST(FlameTest, InstantsAndZeroDurationSpansAreSkipped) {
  trace::TraceSink sink;
  sink.Instant(0, trace::Category::kSteal, "steal", 10);
  sink.Span(0, trace::Category::kTask, "task", 20, 20);
  EXPECT_EQ(trace::ExportCollapsedStacks(sink), "");
}

TEST(FlameTest, SequentialSpansDoNotNest) {
  trace::TraceSink sink;
  sink.SetTrackName(1, "cpu 1");
  sink.Span(1, trace::Category::kTask, "task", 0, 10);
  sink.Span(1, trace::Category::kTask, "task", 10, 25);
  const std::string folded = trace::ExportCollapsedStacks(sink);
  // Same stack, aggregated; lines are sorted lexicographically.
  EXPECT_EQ(folded, "cpu 1;task 25\n");
}

TEST(FlameTest, ExportIsDeterministicOnRealRun) {
  trace::TraceSink sink;
  const JoinResult result = RunTraced(&sink);
  (void)result;
  const std::string first = trace::ExportCollapsedStacks(sink);
  const std::string second = trace::ExportCollapsedStacks(sink);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Every line is "stack value" with a positive integer value.
  size_t begin = 0;
  while (begin < first.size()) {
    const size_t end = first.find('\n', begin);
    ASSERT_NE(end, std::string::npos);
    const std::string line = first.substr(begin, end - begin);
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::atoll(line.c_str() + space + 1), 0) << line;
    begin = end + 1;
  }
}

}  // namespace
}  // namespace psj

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/parallel_join.h"
#include "data/generator.h"
#include "data/map_builder.h"
#include "join/sequential_join.h"

namespace psj {
namespace {

using Pair = std::pair<uint64_t, uint64_t>;

std::set<Pair> AsSet(const std::vector<Pair>& pairs) {
  return std::set<Pair>(pairs.begin(), pairs.end());
}

// Shared scaled-down version of the paper's setup, built once.
class ParallelJoinTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Geography geo = Geography::Generate(100, 40);
    StreetsSpec streets;
    streets.num_objects = 2'500;
    MixedSpec mixed;
    mixed.num_objects = 2'000;
    store_r_ = new ObjectStore(GenerateStreetsMap(geo, streets));
    store_s_ = new ObjectStore(GenerateMixedMap(geo, mixed));
    tree_r_ = new RStarTree(BuildTreeFromObjects(1, store_r_->objects()));
    tree_s_ = new RStarTree(BuildTreeFromObjects(2, store_s_->objects()));
    const auto sequential = SequentialRTreeJoin(*tree_r_, *tree_s_);
    expected_candidates_ = new std::set<Pair>(AsSet(sequential.candidates));
    const auto brute = BruteForceObjectJoin(*store_r_, *store_s_);
    ASSERT_EQ(*expected_candidates_, AsSet(brute.candidates))
        << "sequential join disagrees with brute force";
    expected_answers_ = new std::set<Pair>(AsSet(brute.answers));
  }

  static void TearDownTestSuite() {
    delete expected_candidates_;
    delete expected_answers_;
    delete tree_r_;
    delete tree_s_;
    delete store_r_;
    delete store_s_;
    expected_candidates_ = nullptr;
    expected_answers_ = nullptr;
    tree_r_ = tree_s_ = nullptr;
    store_r_ = store_s_ = nullptr;
  }

  static JoinResult MustRun(const ParallelJoinConfig& config) {
    ParallelSpatialJoin join(tree_r_, tree_s_, store_r_, store_s_);
    auto result = join.Run(config);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  static ObjectStore* store_r_;
  static ObjectStore* store_s_;
  static RStarTree* tree_r_;
  static RStarTree* tree_s_;
  static std::set<Pair>* expected_candidates_;
  static std::set<Pair>* expected_answers_;
};

ObjectStore* ParallelJoinTest::store_r_ = nullptr;
ObjectStore* ParallelJoinTest::store_s_ = nullptr;
RStarTree* ParallelJoinTest::tree_r_ = nullptr;
RStarTree* ParallelJoinTest::tree_s_ = nullptr;
std::set<Pair>* ParallelJoinTest::expected_candidates_ = nullptr;
std::set<Pair>* ParallelJoinTest::expected_answers_ = nullptr;

TEST_F(ParallelJoinTest, SingleProcessorMatchesSequential) {
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.num_processors = 1;
  config.num_disks = 1;
  config.total_buffer_pages = 100;
  config.collect_pairs = true;
  const JoinResult result = MustRun(config);
  EXPECT_EQ(AsSet(result.candidate_pairs), *expected_candidates_);
  EXPECT_EQ(AsSet(result.answer_pairs), *expected_answers_);
  EXPECT_EQ(result.stats.total_candidates,
            static_cast<int64_t>(expected_candidates_->size()));
}

TEST_F(ParallelJoinTest, DeterministicAcrossRuns) {
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.num_processors = 6;
  config.num_disks = 6;
  config.total_buffer_pages = 300;
  const JoinResult a = MustRun(config);
  const JoinResult b = MustRun(config);
  EXPECT_EQ(a.stats.response_time, b.stats.response_time);
  EXPECT_EQ(a.stats.total_disk_accesses, b.stats.total_disk_accesses);
  EXPECT_EQ(a.stats.total_task_time, b.stats.total_task_time);
  for (size_t i = 0; i < a.stats.per_processor.size(); ++i) {
    EXPECT_EQ(a.stats.per_processor[i].last_work_time,
              b.stats.per_processor[i].last_work_time);
    EXPECT_EQ(a.stats.per_processor[i].candidates,
              b.stats.per_processor[i].candidates);
  }
}

// Every combination of buffer/assignment/reassignment/victim must produce
// exactly the sequential candidate and answer sets.
struct VariantParam {
  BufferType buffer;
  TaskAssignment assignment;
  ReassignmentLevel reassignment;
  VictimPolicy victim;
};

class ParallelJoinVariantTest
    : public ParallelJoinTest,
      public ::testing::WithParamInterface<VariantParam> {};

TEST_P(ParallelJoinVariantTest, CandidatesAndAnswersMatchSequential) {
  const VariantParam& param = GetParam();
  ParallelJoinConfig config;
  config.buffer_type = param.buffer;
  config.assignment = param.assignment;
  config.reassignment = param.reassignment;
  config.victim_policy = param.victim;
  config.num_processors = 7;  // Deliberately not a divisor of anything.
  config.num_disks = 4;
  config.total_buffer_pages = 210;
  config.collect_pairs = true;
  const JoinResult result = MustRun(config);
  EXPECT_EQ(AsSet(result.candidate_pairs), *expected_candidates_)
      << config.Describe();
  EXPECT_EQ(AsSet(result.answer_pairs), *expected_answers_)
      << config.Describe();
  EXPECT_EQ(result.candidate_pairs.size(), expected_candidates_->size())
      << "duplicates under " << config.Describe();
}

// The derived accounting fields must be consistent for every buffer /
// assignment / reassignment variant: response time is the slowest
// processor's finish time, idle time is exactly the non-busy remainder of
// each processor's active window (task creation counts as busy on cpu 0),
// and the per-processor disk queue waits partition the aggregate.
TEST_P(ParallelJoinVariantTest, DerivedStatsInvariants) {
  const VariantParam& param = GetParam();
  ParallelJoinConfig config;
  config.buffer_type = param.buffer;
  config.assignment = param.assignment;
  config.reassignment = param.reassignment;
  config.victim_policy = param.victim;
  config.num_processors = 7;
  config.num_disks = 4;
  config.total_buffer_pages = 210;
  const JoinStats stats = MustRun(config).stats;

  sim::SimTime max_finish = 0;
  sim::SimTime idle_sum = 0;
  sim::SimTime queue_wait_sum = 0;
  for (size_t i = 0; i < stats.per_processor.size(); ++i) {
    const ProcessorStats& p = stats.per_processor[i];
    max_finish = std::max(max_finish, p.last_work_time);
    const sim::SimTime non_idle =
        p.busy_time + (i == 0 ? stats.task_creation_time : 0);
    EXPECT_EQ(p.idle_time,
              std::max<sim::SimTime>(p.last_work_time - non_idle, 0))
        << "cpu " << i << " under " << config.Describe();
    EXPECT_GE(p.idle_time, 0) << "cpu " << i;
    EXPECT_LE(p.idle_time, p.last_work_time) << "cpu " << i;
    // Queue waits happen inside disk reads, which happen inside tasks.
    EXPECT_LE(p.disk_queue_wait, p.busy_time + stats.task_creation_time)
        << "cpu " << i << " under " << config.Describe();
    idle_sum += p.idle_time;
    queue_wait_sum += p.disk_queue_wait;
  }
  EXPECT_EQ(stats.response_time, max_finish) << config.Describe();
  EXPECT_EQ(stats.total_idle_time, idle_sum) << config.Describe();
  EXPECT_EQ(stats.total_disk_wait, queue_wait_sum) << config.Describe();
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ParallelJoinVariantTest,
    ::testing::Values(
        VariantParam{BufferType::kLocal, TaskAssignment::kStaticRange,
                     ReassignmentLevel::kNone, VictimPolicy::kMostLoaded},
        VariantParam{BufferType::kLocal, TaskAssignment::kStaticRange,
                     ReassignmentLevel::kRootLevel,
                     VictimPolicy::kMostLoaded},
        VariantParam{BufferType::kLocal, TaskAssignment::kStaticRange,
                     ReassignmentLevel::kAllLevels,
                     VictimPolicy::kMostLoaded},
        VariantParam{BufferType::kLocal, TaskAssignment::kStaticRange,
                     ReassignmentLevel::kAllLevels, VictimPolicy::kArbitrary},
        VariantParam{BufferType::kGlobal, TaskAssignment::kStaticRoundRobin,
                     ReassignmentLevel::kNone, VictimPolicy::kMostLoaded},
        VariantParam{BufferType::kGlobal, TaskAssignment::kStaticRoundRobin,
                     ReassignmentLevel::kRootLevel,
                     VictimPolicy::kMostLoaded},
        VariantParam{BufferType::kGlobal, TaskAssignment::kStaticRoundRobin,
                     ReassignmentLevel::kAllLevels, VictimPolicy::kArbitrary},
        VariantParam{BufferType::kGlobal, TaskAssignment::kDynamic,
                     ReassignmentLevel::kNone, VictimPolicy::kMostLoaded},
        VariantParam{BufferType::kGlobal, TaskAssignment::kDynamic,
                     ReassignmentLevel::kRootLevel, VictimPolicy::kArbitrary},
        VariantParam{BufferType::kGlobal, TaskAssignment::kDynamic,
                     ReassignmentLevel::kAllLevels,
                     VictimPolicy::kMostLoaded},
        VariantParam{BufferType::kLocal, TaskAssignment::kDynamic,
                     ReassignmentLevel::kAllLevels,
                     VictimPolicy::kMostLoaded},
        VariantParam{BufferType::kGlobal, TaskAssignment::kStaticRange,
                     ReassignmentLevel::kAllLevels,
                     VictimPolicy::kMostLoaded},
        VariantParam{BufferType::kSharedNothing, TaskAssignment::kDynamic,
                     ReassignmentLevel::kAllLevels,
                     VictimPolicy::kMostLoaded},
        VariantParam{BufferType::kSharedNothing,
                     TaskAssignment::kStaticRange,
                     ReassignmentLevel::kRootLevel,
                     VictimPolicy::kArbitrary}));

// Property sweep: for any configuration, two runs are bit-identical and
// the candidate count matches the reference — over several processor and
// disk shapes.
class ParallelJoinDeterminismSweep
    : public ParallelJoinTest,
      public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(ParallelJoinDeterminismSweep, BitIdenticalAndCorrect) {
  const auto [processors, disks] = GetParam();
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.reassignment = ReassignmentLevel::kAllLevels;
  config.num_processors = processors;
  config.num_disks = disks;
  config.total_buffer_pages = static_cast<size_t>(40 * processors);
  const JoinResult a = MustRun(config);
  const JoinResult b = MustRun(config);
  EXPECT_EQ(a.stats.response_time, b.stats.response_time);
  EXPECT_EQ(a.stats.total_disk_accesses, b.stats.total_disk_accesses);
  EXPECT_EQ(a.stats.total_candidates,
            static_cast<int64_t>(expected_candidates_->size()));
  EXPECT_EQ(a.stats.total_answers,
            static_cast<int64_t>(expected_answers_->size()));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParallelJoinDeterminismSweep,
                         ::testing::Values(std::make_tuple(2, 1),
                                           std::make_tuple(3, 5),
                                           std::make_tuple(5, 2),
                                           std::make_tuple(9, 9),
                                           std::make_tuple(16, 4)));

TEST_F(ParallelJoinTest, HilbertPlacementPreservesResults) {
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.num_processors = 6;
  config.num_disks = 6;
  config.total_buffer_pages = 300;
  config.collect_pairs = true;
  config.placement = PagePlacement::kHilbertStriping;
  const JoinResult result = MustRun(config);
  EXPECT_EQ(AsSet(result.candidate_pairs), *expected_candidates_);

  // Placement changes timing but never the amount of I/O classes beyond
  // disk queueing.
  config.placement = PagePlacement::kModulo;
  const JoinResult modulo = MustRun(config);
  EXPECT_EQ(result.stats.total_candidates, modulo.stats.total_candidates);
}

TEST_F(ParallelJoinTest, SharedNothingPaysMessagingButSharesPages) {
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.buffer_type = BufferType::kSharedNothing;
  config.num_processors = 8;
  config.num_disks = 8;
  config.total_buffer_pages = 320;
  const auto sn = MustRun(config).stats;
  config.buffer_type = BufferType::kLocal;
  const auto local = MustRun(config).stats;
  // Owner-only buffering avoids duplicate disk reads, like the global
  // buffer.
  EXPECT_LT(sn.total_disk_accesses, local.total_disk_accesses);
  EXPECT_GT(sn.total_remote_hits, 0);
}

TEST_F(ParallelJoinTest, MoreProcessorsReduceResponseTime) {
  ParallelJoinConfig base = ParallelJoinConfig::Gd();
  base.num_processors = 1;
  base.num_disks = 1;
  base.total_buffer_pages = 100;
  const auto t1 = MustRun(base).stats.response_time;

  ParallelJoinConfig wide = ParallelJoinConfig::Gd();
  wide.num_processors = 8;
  wide.num_disks = 8;
  wide.total_buffer_pages = 800;
  const auto t8 = MustRun(wide).stats.response_time;

  EXPECT_LT(t8, t1);
  // Speed-up cannot exceed n.
  EXPECT_GT(t8 * 8 + 8, t1 / 2);  // Loose lower bound: speedup <= 16 here.
}

TEST_F(ParallelJoinTest, SingleDiskBottlenecksParallelism) {
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.total_buffer_pages = 400;
  config.num_processors = 4;
  config.num_disks = 4;
  const auto t_4disks = MustRun(config).stats.response_time;
  config.num_disks = 1;
  const auto t_1disk = MustRun(config).stats.response_time;
  EXPECT_GT(t_1disk, t_4disks);
}

TEST_F(ParallelJoinTest, ReassignmentShrinksFinishSpread) {
  ParallelJoinConfig config = ParallelJoinConfig::Lsr();
  config.num_processors = 8;
  config.num_disks = 8;
  config.total_buffer_pages = 400;
  config.reassignment = ReassignmentLevel::kNone;
  const auto without = MustRun(config).stats;
  config.reassignment = ReassignmentLevel::kAllLevels;
  const auto with = MustRun(config).stats;
  const auto spread_without = without.response_time - without.first_finish;
  const auto spread_with = with.response_time - with.first_finish;
  EXPECT_LT(spread_with, spread_without);
  // Reassignment balances the finish times; the paper (§4.4) notes it may
  // cost some extra disk reads, so allow a small response-time regression.
  EXPECT_LE(with.response_time,
            without.response_time + without.response_time / 10);
}

TEST_F(ParallelJoinTest, GlobalBufferNeverReadsDiskMoreThanLocal) {
  ParallelJoinConfig local = ParallelJoinConfig::Lsr();
  local.num_processors = 8;
  local.num_disks = 8;
  local.total_buffer_pages = 320;
  ParallelJoinConfig global = local;
  global.buffer_type = BufferType::kGlobal;
  const auto local_stats = MustRun(local).stats;
  const auto global_stats = MustRun(global).stats;
  EXPECT_LE(global_stats.total_disk_accesses,
            local_stats.total_disk_accesses);
  EXPECT_GT(global_stats.total_remote_hits, 0);
  EXPECT_EQ(local_stats.total_remote_hits, 0);
}

TEST_F(ParallelJoinTest, LargerBufferMeansFewerDiskAccesses) {
  ParallelJoinConfig small = ParallelJoinConfig::Gd();
  small.num_processors = 4;
  small.num_disks = 4;
  small.total_buffer_pages = 40;
  ParallelJoinConfig large = small;
  large.total_buffer_pages = 2'000;
  EXPECT_GT(MustRun(small).stats.total_disk_accesses,
            MustRun(large).stats.total_disk_accesses);
}

TEST_F(ParallelJoinTest, TaskCreationDescendsForManyProcessors) {
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.num_processors = 16;
  config.num_disks = 16;
  config.total_buffer_pages = 800;
  config.task_creation_factor = 3.0;
  const auto stats = MustRun(config).stats;
  // Either enough tasks were created or the trees bottomed out at level 0.
  EXPECT_TRUE(stats.num_tasks >= 48 || stats.task_level == 0)
      << "m=" << stats.num_tasks << " level=" << stats.task_level;
}

TEST_F(ParallelJoinTest, StatsAreInternallyConsistent) {
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.num_processors = 6;
  config.num_disks = 6;
  config.total_buffer_pages = 300;
  const auto stats = MustRun(config).stats;
  int64_t candidate_sum = 0;
  int64_t disk_sum = 0;
  sim::SimTime max_finish = 0;
  for (const auto& p : stats.per_processor) {
    candidate_sum += p.candidates;
    disk_sum += p.buffer.disk_reads;
    max_finish = std::max(max_finish, p.last_work_time);
    EXPECT_LE(p.busy_time, p.last_work_time);
    EXPECT_GE(p.answers, 0);
    EXPECT_LE(p.answers, p.candidates);
  }
  EXPECT_EQ(candidate_sum, stats.total_candidates);
  EXPECT_EQ(disk_sum, stats.total_disk_accesses);
  EXPECT_EQ(max_finish, stats.response_time);
  EXPECT_GE(stats.response_time, stats.first_finish);
  EXPECT_GE(stats.avg_finish, stats.first_finish);
  EXPECT_LE(stats.avg_finish, stats.response_time);
  EXPECT_GT(stats.total_disk_accesses, 0);
  EXPECT_GT(stats.num_tasks, 0);
}

TEST_F(ParallelJoinTest, RefinementCanBeSkipped) {
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.num_processors = 4;
  config.num_disks = 4;
  config.compute_answers = false;
  const auto stats = MustRun(config).stats;
  EXPECT_EQ(stats.total_answers, 0);
  EXPECT_EQ(stats.total_candidates,
            static_cast<int64_t>(expected_candidates_->size()));
}

TEST_F(ParallelJoinTest, InvalidConfigsRejected) {
  ParallelSpatialJoin join(tree_r_, tree_s_, store_r_, store_s_);
  ParallelJoinConfig config;
  config.num_processors = 0;
  EXPECT_TRUE(join.Run(config).status().IsInvalidArgument());
  config = ParallelJoinConfig();
  config.num_disks = -1;
  EXPECT_TRUE(join.Run(config).status().IsInvalidArgument());
}

TEST_F(ParallelJoinTest, MissingStoresRejectedWhenAnswersRequested) {
  ParallelSpatialJoin join(tree_r_, tree_s_, nullptr, nullptr);
  ParallelJoinConfig config;
  config.compute_answers = true;
  EXPECT_TRUE(join.Run(config).status().IsInvalidArgument());
  config.compute_answers = false;
  EXPECT_TRUE(join.Run(config).ok());
}

TEST_F(ParallelJoinTest, DuplicateTreeIdsRejected) {
  RStarTree clone(tree_r_->tree_id());
  ParallelSpatialJoin join(tree_r_, &clone, store_r_, store_s_);
  ParallelJoinConfig config;
  config.compute_answers = false;
  EXPECT_TRUE(join.Run(config).status().IsInvalidArgument());
}

TEST_F(ParallelJoinTest, SelfJoinRuns) {
  ParallelSpatialJoin join(tree_r_, tree_r_, store_r_, store_r_);
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.num_processors = 4;
  config.num_disks = 4;
  config.compute_answers = false;
  auto result = join.Run(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // At least the identity pairs qualify as candidates.
  EXPECT_GE(result->stats.total_candidates,
            static_cast<int64_t>(store_r_->size()));
}

TEST_F(ParallelJoinTest, MoreProcessorsThanTasksStillCorrect) {
  ParallelJoinConfig config = ParallelJoinConfig::Gd();
  config.num_processors = 24;
  config.num_disks = 24;
  config.total_buffer_pages = 2'400;
  config.task_creation_factor = 0.0;  // Stay at the root level: few tasks.
  config.collect_pairs = true;
  const JoinResult result = MustRun(config);
  EXPECT_EQ(AsSet(result.candidate_pairs), *expected_candidates_);
}

}  // namespace
}  // namespace psj

#include <gtest/gtest.h>

#include "core/workload.h"

namespace psj {
namespace {

NodePair P(uint32_t r, uint32_t s, int level) {
  return NodePair{r, s, static_cast<int16_t>(level)};
}

TEST(WorkloadTest, EmptyByDefault) {
  Workload w(3);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.size(), 0);
  EXPECT_FALSE(w.PopNext().has_value());
  EXPECT_EQ(w.HighestLevelInfo(0), (std::pair<int, int64_t>{-1, 0}));
}

TEST(WorkloadTest, PopTakesLowestLevelFirstFifoWithin) {
  Workload w(3);
  w.PushOne(P(1, 1, 2));
  w.PushOne(P(2, 2, 0));
  w.PushOne(P(3, 3, 0));
  w.PushOne(P(4, 4, 1));
  EXPECT_EQ(*w.PopNext(), P(2, 2, 0));
  EXPECT_EQ(*w.PopNext(), P(3, 3, 0));
  EXPECT_EQ(*w.PopNext(), P(4, 4, 1));
  EXPECT_EQ(*w.PopNext(), P(1, 1, 2));
  EXPECT_TRUE(w.empty());
}

TEST(WorkloadTest, DepthFirstChildOrdering) {
  // Simulates execution: a level-1 pair spawns children at level 0; they
  // must be consumed before the next level-1 pair.
  Workload w(2);
  w.PushOne(P(10, 10, 1));
  w.PushOne(P(20, 20, 1));
  EXPECT_EQ(*w.PopNext(), P(10, 10, 1));
  w.Push({P(11, 11, 0), P(12, 12, 0)});
  EXPECT_EQ(*w.PopNext(), P(11, 11, 0));
  EXPECT_EQ(*w.PopNext(), P(12, 12, 0));
  EXPECT_EQ(*w.PopNext(), P(20, 20, 1));
}

TEST(WorkloadTest, HighestLevelInfoRespectsMinLevel) {
  Workload w(3);
  w.Push({P(1, 1, 0), P(2, 2, 0), P(3, 3, 1)});
  EXPECT_EQ(w.HighestLevelInfo(0), (std::pair<int, int64_t>{1, 1}));
  EXPECT_EQ(w.HighestLevelInfo(1), (std::pair<int, int64_t>{1, 1}));
  EXPECT_EQ(w.HighestLevelInfo(2), (std::pair<int, int64_t>{-1, 0}));
  w.PopNext();  // Removes a level-0 pair.
  w.PopNext();
  w.PopNext();  // Removes the level-1 pair.
  EXPECT_EQ(w.HighestLevelInfo(0), (std::pair<int, int64_t>{-1, 0}));
}

TEST(WorkloadTest, StealHalfTakesBackHalfOfHighestLevel) {
  Workload w(2);
  w.Push({P(1, 1, 1), P(2, 2, 1), P(3, 3, 1), P(4, 4, 1), P(5, 5, 1)});
  w.Push({P(9, 9, 0)});
  const auto stolen = w.StealHalf(0);
  ASSERT_EQ(stolen.size(), 3u);  // ceil(5/2) from level 1.
  EXPECT_EQ(stolen[0], P(3, 3, 1));
  EXPECT_EQ(stolen[1], P(4, 4, 1));
  EXPECT_EQ(stolen[2], P(5, 5, 1));
  EXPECT_EQ(w.size(), 3);  // 2 level-1 + 1 level-0 remain.
  // Victim keeps the front half in order.
  EXPECT_EQ(*w.PopNext(), P(9, 9, 0));
  EXPECT_EQ(*w.PopNext(), P(1, 1, 1));
  EXPECT_EQ(*w.PopNext(), P(2, 2, 1));
}

TEST(WorkloadTest, StealHonorsMinLevel) {
  Workload w(3);
  w.Push({P(1, 1, 0), P(2, 2, 0), P(3, 3, 0), P(4, 4, 0)});
  // Root-level-only stealing finds nothing below level 2.
  EXPECT_TRUE(w.StealHalf(2).empty());
  EXPECT_EQ(w.size(), 4);
  // All-levels stealing takes half of level 0.
  EXPECT_EQ(w.StealHalf(0).size(), 2u);
}

TEST(WorkloadTest, StealSinglePairTakesIt) {
  Workload w(2);
  w.PushOne(P(1, 1, 1));
  const auto stolen = w.StealHalf(0);
  EXPECT_EQ(stolen.size(), 1u);
  EXPECT_TRUE(w.empty());
}

TEST(WorkloadTest, SizeTracksPushAndPop) {
  Workload w(4);
  w.Push({P(1, 1, 3), P(2, 2, 2), P(3, 3, 1)});
  EXPECT_EQ(w.size(), 3);
  w.PopNext();
  EXPECT_EQ(w.size(), 2);
  w.StealHalf(0);
  EXPECT_EQ(w.size(), 1);
}

}  // namespace
}  // namespace psj

#include <gtest/gtest.h>

#include <cstring>

#include "rtree/node.h"

namespace psj {
namespace {

RTreeNode MakeDirNode(size_t entries) {
  RTreeNode node;
  node.level = 2;
  for (size_t i = 0; i < entries; ++i) {
    const double b = static_cast<double>(i);
    node.entries.push_back(
        RTreeEntry{Rect(b, b + 0.5, b + 1.0, b + 2.0), i + 100});
  }
  return node;
}

RTreeNode MakeLeafNode(size_t entries) {
  RTreeNode node;
  node.level = 0;
  for (size_t i = 0; i < entries; ++i) {
    const double b = static_cast<double>(i) * 0.1;
    node.entries.push_back(
        RTreeEntry{Rect(b, b, b + 0.01, b + 0.02), 0xdeadbeef00ULL + i});
  }
  return node;
}

TEST(RTreeNodeTest, ComputeMbrOfEntries) {
  const RTreeNode node = MakeDirNode(3);
  EXPECT_EQ(node.ComputeMbr(), Rect(0, 0.5, 3, 4));
  EXPECT_EQ(RTreeNode().ComputeMbr(), Rect::Empty());
}

TEST(RTreeNodeTest, DirNodeRoundTrip) {
  const RTreeNode node = MakeDirNode(kMaxDirEntries);
  PageData page;
  PackNode(node, &page);
  const auto unpacked = UnpackNode(page);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(unpacked->level, node.level);
  ASSERT_EQ(unpacked->entries.size(), node.entries.size());
  for (size_t i = 0; i < node.entries.size(); ++i) {
    EXPECT_EQ(unpacked->entries[i].rect, node.entries[i].rect);
    EXPECT_EQ(unpacked->entries[i].child_page(),
              node.entries[i].child_page());
  }
}

TEST(RTreeNodeTest, LeafNodeRoundTripKeeps64BitIds) {
  const RTreeNode node = MakeLeafNode(kMaxDataEntries);
  PageData page;
  PackNode(node, &page);
  const auto unpacked = UnpackNode(page);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_TRUE(unpacked->is_leaf());
  ASSERT_EQ(unpacked->entries.size(), node.entries.size());
  for (size_t i = 0; i < node.entries.size(); ++i) {
    EXPECT_EQ(unpacked->entries[i].object_id(), node.entries[i].object_id());
  }
}

TEST(RTreeNodeTest, EmptyNodeRoundTrip) {
  RTreeNode node;
  node.level = 0;
  PageData page;
  PackNode(node, &page);
  const auto unpacked = UnpackNode(page);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(unpacked->entries.size(), 0u);
}

TEST(RTreeNodeTest, UnpackRejectsOverflowCount) {
  RTreeNode node = MakeLeafNode(1);
  PageData page;
  PackNode(node, &page);
  // Corrupt the count field beyond leaf capacity.
  const uint16_t bogus = 999;
  std::memcpy(page.data() + 2, &bogus, sizeof(bogus));
  EXPECT_TRUE(UnpackNode(page).status().IsCorruption());
}

TEST(RTreeNodeTest, UnpackRejectsInvalidRect) {
  RTreeNode node = MakeLeafNode(1);
  PageData page;
  PackNode(node, &page);
  // Make xl > xu in the first entry.
  const double bad = 1e9;
  std::memcpy(page.data() + kPageHeaderSize, &bad, sizeof(bad));
  EXPECT_TRUE(UnpackNode(page).status().IsCorruption());
}

}  // namespace
}  // namespace psj

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rtree/str_loader.h"
#include "rtree/validator.h"
#include "util/rng.h"

namespace psj {
namespace {

std::vector<RTreeEntry> RandomEntries(uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<RTreeEntry> entries;
  for (int i = 0; i < count; ++i) {
    const double x = rng.NextDoubleInRange(0.0, 1.0);
    const double y = rng.NextDoubleInRange(0.0, 1.0);
    entries.push_back(RTreeEntry{Rect(x, y, x + 0.01, y + 0.01),
                                 static_cast<uint64_t>(i)});
  }
  return entries;
}

TEST(StrLoaderTest, EmptyInputMakesValidEmptyTree) {
  const RStarTree tree = BuildStrTree(1, {});
  EXPECT_TRUE(ValidateRTree(tree).ok());
  EXPECT_EQ(tree.num_data_entries(), 0);
  EXPECT_EQ(tree.height(), 1);
}

TEST(StrLoaderTest, SingleLeafWhenFewEntries) {
  const RStarTree tree = BuildStrTree(1, RandomEntries(1, 10));
  EXPECT_TRUE(ValidateRTree(tree).ok());
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.num_data_entries(), 10);
}

TEST(StrLoaderTest, LargeLoadIsValidAndComplete) {
  const auto entries = RandomEntries(2, 20'000);
  const RStarTree tree = BuildStrTree(7, entries);
  EXPECT_TRUE(ValidateRTree(tree).ok());
  EXPECT_EQ(tree.num_data_entries(), 20'000);
  EXPECT_GE(tree.height(), 2);
  // Every entry findable.
  const auto hits = tree.WindowQuery(Rect(0, 0, 2, 2));
  EXPECT_EQ(hits.size(), entries.size());
  const std::set<uint64_t> unique(hits.begin(), hits.end());
  EXPECT_EQ(unique.size(), entries.size());
}

TEST(StrLoaderTest, FullFillPacksTighterThanPartialFill) {
  const auto entries = RandomEntries(3, 10'000);
  StrLoadOptions full;
  full.fill_fraction = 1.0;
  StrLoadOptions partial;
  partial.fill_fraction = 0.7;
  const auto full_stats = BuildStrTree(1, entries, full).ComputeShapeStats();
  const auto partial_stats =
      BuildStrTree(1, entries, partial).ComputeShapeStats();
  EXPECT_LT(full_stats.num_data_pages, partial_stats.num_data_pages);
  EXPECT_GT(full_stats.avg_data_fill, 0.95);
}

TEST(StrLoaderTest, QueriesMatchLinearScan) {
  const auto entries = RandomEntries(4, 3'000);
  const RStarTree tree = BuildStrTree(1, entries);
  Rng rng(5);
  for (int q = 0; q < 30; ++q) {
    const double x = rng.NextDoubleInRange(0.0, 0.9);
    const double y = rng.NextDoubleInRange(0.0, 0.9);
    const Rect window(x, y, x + 0.1, y + 0.1);
    std::set<uint64_t> expected;
    for (const auto& e : entries) {
      if (e.rect.Intersects(window)) expected.insert(e.id);
    }
    auto hits = tree.WindowQuery(window);
    const std::set<uint64_t> actual(hits.begin(), hits.end());
    ASSERT_EQ(actual, expected);
  }
}

TEST(StrLoaderTest, AwkwardSizesStayStructurallyValid) {
  // STR distributes the remainder evenly, but nodes may still fall below
  // the R* insertion minimum; structural validity (balance, MBRs,
  // reachability) must always hold.
  for (int count : {27, 100, 2'700, 2'654, 26 * 26 + 1}) {
    const RStarTree tree = BuildStrTree(1, RandomEntries(6, count));
    const Status status = ValidateRTree(tree, /*enforce_min_fill=*/false);
    EXPECT_TRUE(status.ok()) << "count=" << count << ": "
                             << status.ToString();
    EXPECT_EQ(tree.num_data_entries(), count);
  }
}

}  // namespace
}  // namespace psj

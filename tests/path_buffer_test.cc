#include <gtest/gtest.h>

#include "buffer/path_buffer.h"

namespace psj {
namespace {

TEST(PathBufferTest, EmptyContainsNothing) {
  PathBuffer buffer(3);
  EXPECT_FALSE(buffer.Contains(PageId{0, 1}, 0));
  EXPECT_FALSE(buffer.Contains(PageId{0, 1}, 2));
}

TEST(PathBufferTest, HoldsOneNodePerLevelPerTree) {
  PathBuffer buffer(3);
  buffer.Enter(PageId{0, 10}, 2);  // Root of tree 0.
  buffer.Enter(PageId{0, 20}, 1);
  buffer.Enter(PageId{0, 30}, 0);
  EXPECT_TRUE(buffer.Contains(PageId{0, 10}, 2));
  EXPECT_TRUE(buffer.Contains(PageId{0, 20}, 1));
  EXPECT_TRUE(buffer.Contains(PageId{0, 30}, 0));
}

TEST(PathBufferTest, NewPathSegmentInvalidatesDeeperLevels) {
  PathBuffer buffer(3);
  buffer.Enter(PageId{0, 10}, 2);
  buffer.Enter(PageId{0, 20}, 1);
  buffer.Enter(PageId{0, 30}, 0);
  // Descend into another level-1 node: its old leaf must be dropped.
  buffer.Enter(PageId{0, 21}, 1);
  EXPECT_TRUE(buffer.Contains(PageId{0, 10}, 2));
  EXPECT_TRUE(buffer.Contains(PageId{0, 21}, 1));
  EXPECT_FALSE(buffer.Contains(PageId{0, 20}, 1));
  EXPECT_FALSE(buffer.Contains(PageId{0, 30}, 0));
}

TEST(PathBufferTest, ReenteringSamePageKeepsDeeperLevels) {
  PathBuffer buffer(3);
  buffer.Enter(PageId{0, 10}, 2);
  buffer.Enter(PageId{0, 20}, 1);
  buffer.Enter(PageId{0, 30}, 0);
  buffer.Enter(PageId{0, 20}, 1);  // Same node again: a no-op.
  EXPECT_TRUE(buffer.Contains(PageId{0, 30}, 0));
}

TEST(PathBufferTest, TreesAreIndependent) {
  PathBuffer buffer(3);
  buffer.Enter(PageId{0, 10}, 1);
  buffer.Enter(PageId{1, 10}, 1);
  EXPECT_TRUE(buffer.Contains(PageId{0, 10}, 1));
  EXPECT_TRUE(buffer.Contains(PageId{1, 10}, 1));
  buffer.Enter(PageId{0, 11}, 1);
  EXPECT_FALSE(buffer.Contains(PageId{0, 10}, 1));
  EXPECT_TRUE(buffer.Contains(PageId{1, 10}, 1));
}

TEST(PathBufferTest, LevelsBeyondHeightIgnored) {
  PathBuffer buffer(2);
  buffer.Enter(PageId{0, 10}, 5);
  EXPECT_FALSE(buffer.Contains(PageId{0, 10}, 5));
}

TEST(PathBufferTest, ClearDropsEverything) {
  PathBuffer buffer(3);
  buffer.Enter(PageId{0, 10}, 1);
  buffer.Clear();
  EXPECT_FALSE(buffer.Contains(PageId{0, 10}, 1));
}

TEST(PathBufferTest, SamePageNumberDifferentLevelDoesNotMatch) {
  PathBuffer buffer(3);
  buffer.Enter(PageId{0, 10}, 1);
  EXPECT_FALSE(buffer.Contains(PageId{0, 10}, 0));
  EXPECT_FALSE(buffer.Contains(PageId{0, 10}, 2));
}

}  // namespace
}  // namespace psj
